package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SpanLeak flags telemetry spans that are not ended on every return path.
// A telemetry.StartSpan whose End is skipped on an early error return
// silently drops the observation — and the error paths (failed
// verification, failed decryption) are precisely the latencies worth
// watching. The safe patterns are `defer tel.StartSpan("x").End()` and
// ending a named span before any return can occur.
//
// The same lifecycle rule covers the context-aware starters that return
// a (ctx, span) pair — telemetry.StartSpanCtx and the trace collector's
// StartSpan/StartRoot: a leaked pair span additionally drops its node
// from the distributed trace tree, orphaning every child started under
// the returned context.
//
// The check is lexical, not a full CFG: a named span must be ended (or
// defer-ended) with no return statement between StartSpan and the first
// End; spans that escape the function (stored, passed, captured by a
// closure) are not tracked.
var SpanLeak = &Analyzer{
	Name: "spanleak",
	Doc: "reports telemetry.StartSpan/StartSpanCtx and trace span results that are " +
		"dropped or not ended before an early return; defer the End call or end before returning",
	Run: runSpanLeak,
}

func runSpanLeak(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		file := f.AST
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					pass.analyzeSpanScope(file, fn.Body)
				}
			case *ast.FuncLit:
				pass.analyzeSpanScope(file, fn.Body)
			}
			return true
		})
	}
}

// scopedInspect walks body without descending into nested function
// literals: returns and span uses inside a closure belong to the closure.
func scopedInspect(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

// spanVar tracks one named span within a function scope.
type spanVar struct {
	name      string
	obj       types.Object
	assignPos token.Pos
}

func (p *Pass) analyzeSpanScope(file *ast.File, body *ast.BlockStmt) {
	var (
		spans      []*spanVar
		returnPos  []token.Pos
		deferCalls = map[*ast.CallExpr]bool{}
	)

	scopedInspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			returnPos = append(returnPos, st.Pos())
		case *ast.DeferStmt:
			deferCalls[st.Call] = true
			if callee, ok := p.CalleeOf(file, st.Call); ok && (isStartSpan(callee) || isSpanPairStart(callee)) {
				p.Reportf(st.Pos(), "deferred %s starts the span at function exit and never ends it", callee.Name)
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if callee, ok := p.CalleeOf(file, call); ok && (isStartSpan(callee) || isSpanPairStart(callee)) {
					p.Reportf(call.Pos(), "result of %s is discarded; the span is never ended", callee.Name)
				}
			}
		case *ast.AssignStmt:
			// The pair starters (StartSpanCtx, trace StartSpan/StartRoot)
			// return (ctx, span): the span is the second value of a
			// two-variable assignment from a single call.
			if len(st.Rhs) == 1 && len(st.Lhs) == 2 {
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, ok := p.CalleeOf(file, call)
				if !ok || !isSpanPairStart(callee) {
					return true
				}
				id, ok := st.Lhs[1].(*ast.Ident)
				if !ok {
					return true
				}
				if id.Name == "_" {
					p.Reportf(id.Pos(), "span result of %s is discarded; the span is never ended", callee.Name)
					return true
				}
				spans = append(spans, &spanVar{name: id.Name, obj: p.identObj(id), assignPos: id.Pos()})
				return true
			}
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				callee, ok := p.CalleeOf(file, call)
				if !ok || !isStartSpan(callee) {
					continue
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					p.Reportf(id.Pos(), "result of StartSpan is discarded; the span is never ended")
					continue
				}
				spans = append(spans, &spanVar{name: id.Name, obj: p.identObj(id), assignPos: id.Pos()})
			}
		}
		return true
	})
	sort.Slice(returnPos, func(i, j int) bool { return returnPos[i] < returnPos[j] })

	for _, sv := range spans {
		p.checkSpanVar(file, body, sv, returnPos, deferCalls)
	}
}

func isStartSpan(c Callee) bool {
	return c.Name == "StartSpan" && (c.PkgPath == "" || c.InPkg("internal/telemetry"))
}

// isSpanPairStart matches the context-aware starters returning a
// (ctx, span) pair. Trace's StartSpan shares its name with telemetry's
// single-result form, so it matches only with resolved type information;
// the two-variable assignment shape does the rest of the disambiguation.
func isSpanPairStart(c Callee) bool {
	switch c.Name {
	case "StartSpanCtx":
		return c.PkgPath == "" || c.InPkg("internal/telemetry")
	case "StartSpan", "StartRoot":
		return c.InPkg("internal/trace")
	}
	return false
}

// checkSpanVar verifies that sv is ended before any return following its
// creation.
func (p *Pass) checkSpanVar(file *ast.File, body *ast.BlockStmt, sv *spanVar,
	returnPos []token.Pos, deferCalls map[*ast.CallExpr]bool) {

	var (
		endPos      []token.Pos // non-deferred v.End() calls
		deferEndPos []token.Pos // defer v.End() statements
		escapes     bool
	)
	endReceivers := map[*ast.Ident]bool{}

	// First pass: locate End calls on sv so the use scan below can tell
	// End receivers apart from escaping uses.
	scopedInspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || !p.sameVar(id, sv) {
			return true
		}
		endReceivers[id] = true
		if deferCalls[call] {
			deferEndPos = append(deferEndPos, call.Pos())
		} else {
			endPos = append(endPos, call.Pos())
		}
		return true
	})

	// Unlike the scans above, this one descends into nested function
	// literals: a closure that captures the span owns its lifetime.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() == sv.assignPos || endReceivers[id] {
			return true
		}
		if p.sameVar(id, sv) {
			escapes = true
		}
		return true
	})
	if escapes {
		return // stored, passed, or re-used: out of lexical reach
	}

	if len(endPos) == 0 && len(deferEndPos) == 0 {
		p.Reportf(sv.assignPos, "telemetry span %s is never ended; defer %s.End() or end it on every path",
			sv.name, sv.name)
		return
	}

	// The span is covered from the first (defer-)End onward; any return
	// between creation and that point leaks it.
	all := append(append([]token.Pos(nil), endPos...), deferEndPos...)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	covered := all[0]
	for _, ret := range returnPos {
		if ret > sv.assignPos && ret < covered {
			p.Reportf(ret, "return leaks telemetry span %s (started at line %d, not yet ended); defer %s.End() or end it before returning",
				sv.name, p.Fset.Position(sv.assignPos).Line, sv.name)
		}
	}
}

// sameVar matches an identifier against the tracked span variable, by
// object when type information exists, by name otherwise.
func (p *Pass) sameVar(id *ast.Ident, sv *spanVar) bool {
	if sv.obj != nil {
		return p.identObj(id) == sv.obj
	}
	return id.Name == sv.name
}
