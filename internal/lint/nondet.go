package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// nonDetPkgs are the verification packages: code there re-derives digests
// and checks cascade signatures, and must produce the same verdict on
// every replay of the same document. Generators and benchmarks
// (internal/wfgen, cmd/drabench) are deliberately NOT in scope — math/rand
// is legitimate workload-synthesis machinery there.
var nonDetPkgs = []string{
	"internal/dsig",
	"internal/aea",
	"internal/tfc",
	"internal/document",
	"internal/xmlenc",
	"internal/pki",
	"internal/audit",
	"internal/secpol",
}

var verifyName = regexp.MustCompile(`(?i)verify`)

// recoveryPkgs are the durability packages: crash recovery must rebuild
// byte-identical state from the same WAL and checkpoints on every boot,
// so replay/restore paths may not consult the wall clock or a PRNG. The
// math/rand import ban does NOT extend here — relay legitimately uses it
// for retry jitter outside the recovery path.
var recoveryPkgs = []string{
	"internal/pool",
	"internal/relay",
}

// recoveryName seeds the reachability walk in recovery packages.
var recoveryName = regexp.MustCompile(`(?i)(recover|replay|restore)`)

// NonDeterminism flags wall-clock and pseudo-random inputs on signature-
// verification and crash-recovery paths. Cascade verification must be
// reproducible: if re-verifying yesterday's document gives a different
// answer because the verifier consulted time.Now or math/rand,
// nonrepudiation is void. Recovery must be just as deterministic: replay
// that stamps cells with boot-time values diverges from the pre-crash
// state. The rule reports (a) any math/rand import in a verification
// package and (b) time.Now / time.Since / time.Until / math/rand calls
// in functions reachable, within the package, from a function whose name
// contains "Verify" (verification packages) or "Recover"/"Replay"/
// "Restore" (durability packages).
var NonDeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc: "reports time.Now and math/rand reachable from signature-verification " +
		"paths in the crypto packages (dsig, aea, tfc, document, …) and from " +
		"recovery/replay paths in the durability packages (pool, relay)",
	Run: runNonDeterminism,
}

func runNonDeterminism(pass *Pass) {
	pkgPath := strings.TrimSuffix(pass.Pkg.Path, "_test")
	verifyScope := false
	for _, suffix := range nonDetPkgs {
		if pathHasSuffix(pkgPath, suffix) {
			verifyScope = true
			break
		}
	}
	recoveryScope := false
	for _, suffix := range recoveryPkgs {
		if pathHasSuffix(pkgPath, suffix) {
			recoveryScope = true
			break
		}
	}
	if !verifyScope && !recoveryScope {
		return
	}
	seedName := verifyName
	pathKind := "signature verification"
	if recoveryScope {
		seedName = recoveryName
		pathKind = "crash recovery"
	}

	// (a) math/rand has no business in a verification package at all.
	if verifyScope {
		for _, f := range pass.Pkg.Files {
			if f.Test {
				continue
			}
			for _, imp := range f.AST.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(imp.Pos(), "%s imported in verification package %s; use crypto/rand or inject the source",
						path, pass.Pkg.Path)
				}
			}
		}
	}

	// (b) build the intra-package call graph and the per-function list of
	// nondeterministic call sites.
	type fnInfo struct {
		decl    *ast.FuncDecl
		callees []string
		banned  []*ast.CallExpr
		labels  []string // rendered callee names, parallel to banned
	}
	fns := map[string]*fnInfo{}
	var seeds []string
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		file := f.AST
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := funcKey(fd)
			info := &fnInfo{decl: fd}
			fns[key] = info
			if seedName.MatchString(fd.Name.Name) {
				seeds = append(seeds, key)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, ok := pass.CalleeOf(file, call)
				if !ok {
					return true
				}
				if isNonDetCallee(callee) {
					info.banned = append(info.banned, call)
					info.labels = append(info.labels, callee.String())
				} else if callee.PkgPath == pass.Pkg.Path ||
					callee.PkgPath == strings.TrimSuffix(pass.Pkg.Path, "_test") {
					info.callees = append(info.callees, calleeKey(callee))
				}
				return true
			})
		}
	}

	// BFS from the verification seeds, keeping one sample path per
	// function for the report.
	parent := map[string]string{}
	queue := append([]string(nil), seeds...)
	reached := map[string]bool{}
	for _, s := range seeds {
		reached[s] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		info := fns[cur]
		if info == nil {
			continue
		}
		for _, next := range info.callees {
			if !reached[next] && fns[next] != nil {
				reached[next] = true
				parent[next] = cur
				queue = append(queue, next)
			}
		}
	}

	for key, info := range fns {
		if !reached[key] {
			continue
		}
		for i, call := range info.banned {
			pass.Reportf(call.Pos(), "%s makes %s irreproducible (path: %s)",
				info.labels[i], pathKind, samplePath(parent, key))
		}
	}
}

// isNonDetCallee matches the nondeterministic primitives.
func isNonDetCallee(c Callee) bool {
	switch c.PkgPath {
	case "time":
		return c.Name == "Now" || c.Name == "Since" || c.Name == "Until"
	case "math/rand", "math/rand/v2":
		return true
	}
	return false
}

func funcKey(fd *ast.FuncDecl) string {
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		recv = recvTypeName(fd.Recv.List[0].Type)
	}
	return recv + "." + fd.Name.Name
}

func calleeKey(c Callee) string {
	return c.Recv + "." + c.Name
}

func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	}
	return ""
}

// samplePath renders the BFS chain seed → … → fn.
func samplePath(parent map[string]string, key string) string {
	var chain []string
	for {
		chain = append([]string{strings.TrimPrefix(key, ".")}, chain...)
		prev, ok := parent[key]
		if !ok {
			break
		}
		key = prev
	}
	return strings.Join(chain, " → ")
}
