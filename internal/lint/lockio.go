package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ioPkgs lists packages any call into which counts as I/O for lockio.
var ioPkgs = map[string]bool{
	"net/http":     true,
	"net":          true,
	"net/rpc":      true,
	"net/smtp":     true,
	"os/exec":      true,
	"database/sql": true,
}

// ioOSFuncs are the file-touching entry points of package os.
var ioOSFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
}

// LockIO flags I/O performed while a sync.Mutex or sync.RWMutex is held:
// an httpapi client call, an HTTP round trip, or a file operation under a
// lock turns one slow peer into a portal-wide stall (every worklist and
// store request queues behind the lock). The scan is lexical per
// function: locks taken via m.Lock() are considered held until the
// matching m.Unlock() in the same statement list, or to function end when
// the unlock is deferred.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc: "reports network and file I/O (net/http, internal/httpapi client " +
		"calls, os file ops) performed while holding a sync mutex",
	Run: runLockIO,
}

func runLockIO(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		file := f.AST
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					pass.scanLockStmts(file, fn.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				pass.scanLockStmts(file, fn.Body.List, map[string]token.Pos{})
			}
			return true
		})
	}
}

// lockCall classifies a call as Lock/RLock (acquire) or Unlock/RUnlock
// (release) on a sync mutex, returning the receiver's rendered expression.
func (p *Pass) lockCall(file *ast.File, call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	callee, resolved := p.CalleeOf(file, call)
	if resolved && callee.PkgPath != "sync" {
		return "", false, false
	}
	return types.ExprString(sel.X), acquire, true
}

// scanLockStmts walks one statement list carrying the held-lock set.
// Nested blocks get a copy: acquisitions and releases inside a branch are
// conservative and do not propagate to the enclosing list.
func (p *Pass) scanLockStmts(file *ast.File, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if key, acquire, ok := p.lockCall(file, call); ok {
					if acquire {
						held[key] = call.Pos()
					} else {
						delete(held, key)
					}
					continue
				}
			}
			p.checkIONode(file, st, held)
		case *ast.DeferStmt:
			// `defer mu.Unlock()` keeps the lock held for the remainder of
			// the scan, which is exactly right. Other deferred calls run
			// at return time; skip them.
		case *ast.BlockStmt:
			p.scanLockStmts(file, st.List, copyHeld(held))
		case *ast.IfStmt:
			if st.Init != nil {
				p.checkIONode(file, st.Init, held)
			}
			p.checkIONode(file, st.Cond, held)
			p.scanLockStmts(file, st.Body.List, copyHeld(held))
			if st.Else != nil {
				p.scanLockStmts(file, []ast.Stmt{st.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			if st.Init != nil {
				p.checkIONode(file, st.Init, held)
			}
			if st.Cond != nil {
				p.checkIONode(file, st.Cond, held)
			}
			if st.Post != nil {
				p.checkIONode(file, st.Post, held)
			}
			p.scanLockStmts(file, st.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			p.checkIONode(file, st.X, held)
			p.scanLockStmts(file, st.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			if st.Init != nil {
				p.checkIONode(file, st.Init, held)
			}
			if st.Tag != nil {
				p.checkIONode(file, st.Tag, held)
			}
			p.scanCaseClauses(file, st.Body, held)
		case *ast.TypeSwitchStmt:
			p.scanCaseClauses(file, st.Body, held)
		case *ast.SelectStmt:
			for _, clause := range st.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					p.scanLockStmts(file, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			p.scanLockStmts(file, []ast.Stmt{st.Stmt}, held)
		default:
			p.checkIONode(file, st, held)
		}
	}
}

func (p *Pass) scanCaseClauses(file *ast.File, body *ast.BlockStmt, held map[string]token.Pos) {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			p.scanLockStmts(file, cc.Body, copyHeld(held))
		}
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// checkIONode reports I/O calls under the current held set. Function
// literals are skipped: a goroutine body runs on its own schedule.
func (p *Pass) checkIONode(file *ast.File, n ast.Node, held map[string]token.Pos) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := p.CalleeOf(file, call)
		if !ok || !isIOCallee(callee) {
			return true
		}
		key := ""
		for k := range held {
			if key == "" || k < key {
				key = k
			}
		}
		p.Reportf(call.Pos(), "%s performs I/O while %s is locked (since line %d); release the mutex before the call",
			callee, key, p.Fset.Position(held[key]).Line)
		return true
	})
}

// isIOCallee matches network and file I/O entry points, including the
// module's own HTTP client.
func isIOCallee(c Callee) bool {
	if ioPkgs[c.PkgPath] {
		return true
	}
	if c.PkgPath == "os" && ioOSFuncs[c.Name] {
		return true
	}
	if c.InPkg("internal/httpapi") && c.Recv == "Client" {
		return true
	}
	return false
}
