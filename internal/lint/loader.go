package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is one parsed source file of a Package.
type File struct {
	// AST is the parsed syntax tree, with comments.
	AST *ast.File
	// Name is the file's base name.
	Name string
	// Test reports whether the file is a _test.go file. Several rules
	// (cryptoerr, consttime) exempt test files, where discarding a Verify
	// error or comparing digests with == is legitimate.
	Test bool
}

// Package is one type-checked analysis unit.
type Package struct {
	// Path is the import path ("dra4wfms/internal/dsig"). External test
	// packages get the conventional "_test" suffix.
	Path string
	// Dir is the package directory.
	Dir string
	// Fset maps positions for every file of the load.
	Fset *token.FileSet
	// Files are the unit's source files.
	Files []*File
	// Types is the type-checked package (possibly incomplete on errors).
	Types *types.Package
	// Info holds the resolved type information for Files.
	Info *types.Info
	// TypeErrors collects type-checking problems; analysis proceeds on the
	// partial information.
	TypeErrors []error
}

// Loader locates, parses, and type-checks the packages of one module.
// Module-internal imports are resolved by source against Dir; everything
// else (the standard library — the module has no other dependencies) is
// imported from compiler export data, falling back to source.
type Loader struct {
	// ModulePath is the module's import-path prefix (go.mod "module").
	ModulePath string
	// Dir is the module root directory.
	Dir string
	// IncludeTests adds _test.go files (and external test packages) to the
	// analysis units.
	IncludeTests bool
	// Importer selects how non-module (standard library) imports resolve:
	// "" or "auto" tries compiler export data first and falls back to
	// source; "gc" uses export data only (fast, requires an installed
	// toolchain of the running version); "source" type-checks the library
	// from source only (slow, but independent of stale export data — CI
	// runs the suite both ways).
	Importer string
	// Fset receives all parsed positions; NewLoader allocates one.
	Fset *token.FileSet

	gcImporter  types.Importer
	srcImporter types.Importer
	libCache    map[string]*libPkg
	loading     map[string]bool
}

// libPkg is the import-facing (non-test) build of one module package.
type libPkg struct {
	types *types.Package
	err   error
}

// NewLoader creates a loader rooted at dir. When modulePath is empty it is
// read from dir/go.mod.
func NewLoader(modulePath, dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if modulePath == "" {
		modulePath, err = modulePathOf(abs)
		if err != nil {
			return nil, err
		}
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath:  modulePath,
		Dir:         abs,
		Fset:        fset,
		gcImporter:  importer.ForCompiler(fset, "gc", nil),
		srcImporter: importer.ForCompiler(fset, "source", nil),
		libCache:    map[string]*libPkg{},
		loading:     map[string]bool{},
	}, nil
}

// modulePathOf reads the module path from dir/go.mod.
func modulePathOf(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: cannot determine module path: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", dir)
}

// FindModuleRoot walks upward from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// Load resolves the patterns ("./...", "./internal/dsig", import paths
// relative to the module root) into type-checked packages, sorted by path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		root := filepath.Join(l.Dir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			dirs[root] = true
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", pat, err)
		}
	}

	var pkgs []*Package
	for dir := range dirs {
		units, err := l.loadDir(dir)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Dir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.Dir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the analysis units of one directory: the
// package itself (plus in-package test files when IncludeTests) and, when
// present and requested, the external test package.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); !ok {
			return nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
		if !l.IncludeTests || len(bp.TestGoFiles)+len(bp.XTestGoFiles) == 0 {
			return nil, err // NoGoError: nothing to analyze
		}
	}
	importPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}

	var pkgs []*Package
	names := append([]string(nil), bp.GoFiles...)
	names = append(names, bp.CgoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	if len(names) > 0 {
		pkg, err := l.typeCheck(importPath, dir, names, bp.GoFiles, bp.CgoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if l.IncludeTests && len(bp.XTestGoFiles) > 0 {
		pkg, err := l.typeCheck(importPath+"_test", dir, bp.XTestGoFiles, nil, nil)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheck parses names in dir and type-checks them as one unit. libNames
// and cgoNames mark the non-test files (used to decide the Test flag).
func (l *Loader) typeCheck(importPath, dir string, names, libNames, cgoNames []string) (*Package, error) {
	lib := map[string]bool{}
	for _, n := range libNames {
		lib[n] = true
	}
	for _, n := range cgoNames {
		lib[n] = true
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset}
	var asts []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", filepath.Join(dir, name), err)
		}
		pkg.Files = append(pkg.Files, &File{AST: f, Name: name, Test: !lib[name]})
		asts = append(asts, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer:    (*loaderImporter)(l),
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, l.Fset, asts, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// loaderImporter adapts Loader to types.Importer for dependency imports.
type loaderImporter Loader

// Import resolves module-internal paths by source and everything else
// per the Loader.Importer mode: export data with source fallback
// (default), or one of the two exclusively.
func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return l.importModulePkg(path)
	}
	switch l.Importer {
	case "gc":
		return l.gcImporter.Import(path)
	case "source":
		return l.srcImporter.Import(path)
	case "", "auto":
		// fall through to the default chain below
	default:
		return nil, fmt.Errorf("lint: unknown importer mode %q (want auto, gc or source)", l.Importer)
	}
	pkg, err := l.gcImporter.Import(path)
	if err == nil {
		return pkg, nil
	}
	if srcPkg, srcErr := l.srcImporter.Import(path); srcErr == nil {
		return srcPkg, nil
	}
	return nil, err
}

// importModulePkg loads the non-test build of a module package, with
// memoization and import-cycle detection.
func (l *Loader) importModulePkg(path string) (*types.Package, error) {
	if cached, ok := l.libCache[path]; ok {
		return cached.types, cached.err
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.Dir, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath)))
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		l.libCache[path] = &libPkg{err: err}
		return nil, err
	}
	names := append(append([]string(nil), bp.GoFiles...), bp.CgoFiles...)
	var asts []*ast.File
	for _, name := range names {
		f, perr := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			l.libCache[path] = &libPkg{err: perr}
			return nil, perr
		}
		asts = append(asts, f)
	}
	conf := types.Config{
		Importer:    (*loaderImporter)(l),
		FakeImportC: true,
		// Dependencies are typed leniently; the analysis unit's own errors
		// are what the driver surfaces.
		Error: func(error) {},
	}
	tpkg, err := conf.Check(path, l.Fset, asts, nil)
	if tpkg != nil {
		err = nil // lenient: partial type information beats none
	}
	l.libCache[path] = &libPkg{types: tpkg, err: err}
	return tpkg, err
}
