package lint

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe extracts the quoted substrings of a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

var wantStrRe = regexp.MustCompile(`"([^"]*)"`)

// lineKey identifies one source line across the fixture module.
type lineKey struct {
	file string // base name, e.g. fixture.go
	line int
}

type wantEntry struct {
	substr  string
	matched bool
}

// collectWants scans the loaded fixture packages for want comments.
func collectWants(pkgs []*Package) map[lineKey][]*wantEntry {
	wants := map[lineKey][]*wantEntry{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := lineKey{file: baseName(pos.Filename), line: pos.Line}
					for _, q := range wantStrRe.FindAllStringSubmatch(m[1], -1) {
						wants[key] = append(wants[key], &wantEntry{substr: q[1]})
					}
				}
			}
		}
	}
	return wants
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// loadFixture loads the given patterns from the golden fixture module.
func loadFixture(t *testing.T, patterns ...string) []*Package {
	t.Helper()
	loader, err := NewLoader("dra4wfms", "testdata/src/dra4wfms")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	loader.IncludeTests = true
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatalf("Load(%v): %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("Load(%v): no packages", patterns)
	}
	return pkgs
}

// checkGolden runs one analyzer over the fixture packages and diffs its
// diagnostics against the want comments.
func checkGolden(t *testing.T, a *Analyzer, res Result, pkgs []*Package) {
	t.Helper()
	wants := collectWants(pkgs)

	for _, d := range res.Diagnostics {
		key := lineKey{file: baseName(d.Position.Filename), line: d.Position.Line}
		entries := wants[key]
		matched := false
		for _, w := range entries {
			if !w.matched && strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", key, d.Rule, d.Message)
		}
	}

	var missing []string
	for key, entries := range wants {
		for _, w := range entries {
			if !w.matched {
				missing = append(missing, fmt.Sprintf("%s: no diagnostic containing %q", key, w.substr))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}

func (k lineKey) String() string { return fmt.Sprintf("%s:%d", k.file, k.line) }

func TestGolden(t *testing.T) {
	cases := []struct {
		analyzer       *Analyzer
		patterns       []string
		wantSuppressed int // reasoned //lint:ignore directives in the fixture
	}{
		{CryptoErr, []string{"./lintfix/cryptoerr"}, 2},
		{CryptoErr, []string{"./lintfix/relay"}, 1},
		{CryptoErr, []string{"./lintfix/pool"}, 1},
		{ConstTime, []string{"./lintfix/consttime"}, 1},
		{NonDeterminism, []string{"./internal/tfc", "./lintfix/gen", "./internal/pool"}, 2},
		{SpanLeak, []string{"./lintfix/spanleak"}, 1},
		{LockIO, []string{"./lintfix/lockio"}, 1},
		{AckOrder, []string{"./lintfix/ackorder"}, 1},
		{CtxProp, []string{"./lintfix/ctxprop"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			pkgs := loadFixture(t, tc.patterns...)
			res := Run(pkgs, []*Analyzer{tc.analyzer})
			checkGolden(t, tc.analyzer, res, pkgs)
			if got := len(res.Suppressed); got != tc.wantSuppressed {
				for _, d := range res.Suppressed {
					t.Logf("suppressed: %s [%s] %s (reason: %s)", d.Position, d.Rule, d.Message, d.SuppressReason)
				}
				t.Errorf("suppressed diagnostics = %d, want %d", got, tc.wantSuppressed)
			}
			for _, d := range res.Suppressed {
				if d.SuppressReason == "" {
					t.Errorf("%s: suppressed without a recorded reason", d.Position)
				}
			}
		})
	}
}

// TestTestFileExemption pins the cryptoerr test-file carve-out: the same
// discarded calls that are violations in fixture.go are silent in
// fixture_test.go.
func TestTestFileExemption(t *testing.T) {
	pkgs := loadFixture(t, "./lintfix/cryptoerr")
	res := Run(pkgs, []*Analyzer{CryptoErr})
	for _, d := range res.Diagnostics {
		if strings.HasSuffix(d.Position.Filename, "_test.go") {
			t.Errorf("cryptoerr diagnostic in a test file: %s: %s", d.Position, d.Message)
		}
	}
}

// TestSelfClean is the dogfood gate: every analyzer must come back clean
// on the repository that ships it.
func TestSelfClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	loader, err := NewLoader("", root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	loader.IncludeTests = true
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res := Run(pkgs, All())
	for _, d := range res.Diagnostics {
		t.Errorf("repo is not dralint-clean: %s", d.String())
	}
}

func TestByName(t *testing.T) {
	got, err := ByName("consttime,spanleak")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(got) != 2 || got[0].Name != "consttime" || got[1].Name != "spanleak" {
		t.Fatalf("ByName returned %v", got)
	}
	if _, err := ByName("nosuchrule"); err == nil {
		t.Fatal("ByName(nosuchrule): expected error")
	}
}

func TestSplitWords(t *testing.T) {
	cases := map[string][]string{
		"wantMAC":     {"want", "mac"},
		"sigValue":    {"sig", "value"},
		"sha256Sum":   {"sha", "256", "sum"},
		"plain":       {"plain"},
		"HMACDigest2": {"hmac", "digest", "2"},
	}
	for in, want := range cases {
		got := splitWords(in)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Errorf("splitWords(%q) = %v, want %v", in, got, want)
		}
	}
}
