package lint

import (
	"go/ast"
	"go/types"
)

// CtxProp flags traced call chains that derive a span context and then
// pass the *parent* context downstream while the span is still open.
// The pair starters — telemetry.StartSpanCtx, trace StartSpan/StartRoot —
// return a derived context carrying the new span; every call made under
// that span must receive the derived context, or the downstream spans
// attach to the parent and the trace tree silently loses a level (the
// end-to-end tracing of the portal → pool → relay → TFC document path
// then mis-reports where the time went).
//
// The check is path-sensitive over the intraprocedural CFG: a call
// taking the parent context as a direct argument is flagged only when it
// is reachable from the span start without an intervening non-deferred
// span End (a deferred End keeps the span open for the whole body).
// Three shapes stay clean by construction:
//
//   - ctx, span := tel.StartSpanCtx(ctx, ...) — the derived context
//     shadows the parent, which becomes unreachable;
//   - _, span := tel.StartSpanCtx(ctx, ...) in a leaf function that makes
//     no downstream context-carrying calls;
//   - span.End() before the parent context is used again — sequential
//     sibling spans under one parent.
var CtxProp = &Analyzer{
	Name: "ctxprop",
	Doc: "reports calls that receive the parent context while a derived " +
		"trace span context is open; thread the derived context downstream " +
		"or end the span first",
	Run: runCtxProp,
}

func runCtxProp(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		file := f.AST
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					pass.checkCtxProp(file, fn.Body)
				}
			case *ast.FuncLit:
				pass.checkCtxProp(file, fn.Body)
			}
			return true
		})
	}
}

// ctxDerivation is one pair-start site: derived, span := Start(parent, ...).
type ctxDerivation struct {
	call    *ast.CallExpr
	callee  Callee
	parent  *ast.Ident // the context argument passed to the starter
	derived *ast.Ident // Lhs[0]; name "_" when discarded
	span    *spanVar   // Lhs[1]
}

func (p *Pass) checkCtxProp(file *ast.File, body *ast.BlockStmt) {
	var (
		derivs     []*ctxDerivation
		deferCalls = map[*ast.CallExpr]bool{}
	)
	scopedInspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			deferCalls[st.Call] = true
		case *ast.AssignStmt:
			if d := p.pairStartOf(file, st); d != nil {
				derivs = append(derivs, d)
			}
		}
		return true
	})
	if len(derivs) == 0 {
		return
	}
	cfg := NewCFG(body)
	for _, d := range derivs {
		p.checkDerivation(file, body, cfg, d, deferCalls)
	}
}

// pairStartOf recognizes `derived, span := Start...(parent, ...)` and
// returns the derivation, or nil. Derivations that shadow the parent
// (`ctx, span := ...Ctx(ctx, ...)`) are inherently safe — the parent
// name now denotes the derived context — and return nil too.
func (p *Pass) pairStartOf(file *ast.File, st *ast.AssignStmt) *ctxDerivation {
	if len(st.Rhs) != 1 || len(st.Lhs) != 2 {
		return nil
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	callee, ok := p.CalleeOf(file, call)
	if !ok || !isSpanPairStart(callee) {
		return nil
	}
	parent, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || parent.Name == "_" {
		return nil // parent is an expression (req.Context(), ...): untracked
	}
	derived, ok := st.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	if derived.Name == parent.Name {
		return nil // shadowed: the stale parent is unreachable below
	}
	span, ok := st.Lhs[1].(*ast.Ident)
	if !ok || span.Name == "_" {
		return nil // spanleak reports the discarded span
	}
	return &ctxDerivation{
		call:    call,
		callee:  callee,
		parent:  parent,
		derived: derived,
		span:    &spanVar{name: span.Name, obj: p.identObj(span), assignPos: span.Pos()},
	}
}

// checkDerivation reports calls that receive d.parent on a path from the
// pair start with d.span still open.
func (p *Pass) checkDerivation(file *ast.File, body *ast.BlockStmt, cfg *CFG,
	d *ctxDerivation, deferCalls map[*ast.CallExpr]bool) {

	parentObj := p.identObj(d.parent)
	startPt, ok := cfg.PointOf(d.call)
	if !ok {
		return
	}

	// Non-deferred End calls on the span close it; a deferred End runs at
	// function exit and blocks nothing.
	ends := map[*ast.CallExpr]bool{}
	scopedInspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || deferCalls[call] {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && p.sameVar(id, d.span) {
			ends[call] = true
		}
		return true
	})
	spanClosed := func(n ast.Node) bool {
		hit := false
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && ends[call] {
				hit = true
			}
			return !hit
		})
		return hit
	}

	// Candidate leaks: calls taking the parent context as a direct
	// argument. Deferred calls run at function exit, past the span's
	// lifetime, and are skipped.
	scopedInspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call == d.call || deferCalls[call] {
			return true
		}
		if !p.takesIdentArg(call, d.parent, parentObj) {
			return true
		}
		pt, ok := cfg.PointOf(call)
		if !ok {
			return true
		}
		if !cfg.PathExists(startPt, pt, spanClosed) {
			return true
		}
		what := "the derived context"
		if d.derived.Name != "_" {
			what = d.derived.Name
		}
		line := p.Fset.Position(d.call.Pos()).Line
		p.Reportf(call.Pos(),
			"call receives the parent context %s while the span of %s (line %d) is open; downstream spans will attach to the parent, orphaning this span's subtree — pass %s instead or end %s first",
			d.parent.Name, d.callee.String(), line, what, d.span.name)
		return true
	})
}

// takesIdentArg reports whether call has id (matched by object when
// resolved, by name otherwise) as a direct argument.
func (p *Pass) takesIdentArg(call *ast.CallExpr, id *ast.Ident, obj types.Object) bool {
	for _, arg := range call.Args {
		a, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		if obj != nil {
			if p.identObj(a) == obj {
				return true
			}
			continue
		}
		if a.Name == id.Name {
			return true
		}
	}
	return false
}
