package lint

// sarif.go renders a Result as a SARIF 2.1.0 log — the interchange
// format GitHub code scanning ingests, so dralint findings surface as
// pull-request annotations instead of a failed build log to dig through.
// The writer covers the slice of the (large) SARIF schema that code
// scanning actually reads: tool.driver with per-rule metadata, one
// result per diagnostic with a physical location, and suppression
// records for //lint:ignore'd findings (uploaded suppressions keep the
// annotation history honest without re-flagging acknowledged sites).

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// WriteSARIF renders res as a SARIF 2.1.0 log on w. The analyzers
// provide per-rule metadata (every rule is listed, found or not, so the
// code-scanning rule index is stable across runs); root, when non-empty,
// relativizes file URIs so annotations land on repository paths.
// Suppressed findings are included as suppressed results — code scanning
// shows them as dismissed rather than re-opening them.
func WriteSARIF(w io.Writer, res Result, analyzers []*Analyzer, root string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	index := map[string]int{}
	for i, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
		index[a.Name] = i
	}

	results := make([]sarifResult, 0, len(res.Diagnostics)+len(res.Suppressed))
	add := func(d Diagnostic, supp []sarifSuppression) {
		ri := -1
		if i, ok := index[d.Rule]; ok {
			ri = i
		}
		results = append(results, sarifResult{
			RuleID:    d.Rule,
			RuleIndex: ri,
			Level:     "error", // every active finding fails the build
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: sarifURI(d.Position.Filename, root)},
				Region:           sarifRegion{StartLine: d.Position.Line, StartColumn: d.Position.Column},
			}}},
			Suppressions: supp,
		})
	}
	for _, d := range res.Diagnostics {
		add(d, nil)
	}
	for _, d := range res.Suppressed {
		add(d, []sarifSuppression{{Kind: "inSource", Justification: d.SuppressReason}})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dralint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI renders a finding path as a forward-slash URI, relative to
// root when the file lies under it.
func sarifURI(filename, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			filename = rel
		}
	}
	return filepath.ToSlash(filename)
}
