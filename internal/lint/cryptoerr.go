package lint

import (
	"go/ast"
	"regexp"
)

// cryptoErrPkgs are the packages whose sign/verify/encrypt/decrypt errors
// are protocol failures: ignoring them accepts forged or tampered
// documents. Matched by import-path suffix.
var cryptoErrPkgs = []string{
	"internal/dsig",
	"internal/xmlenc",
	"internal/pki",
	"internal/aea",
	"internal/document",
	"internal/secpol",
	"internal/tfc",
	"internal/audit",
}

// cryptoErrFunc matches the protocol-critical operation names within those
// packages.
var cryptoErrFunc = regexp.MustCompile(`^(Sign|Verify|Encrypt|Decrypt|Reveal|Audit)`)

// durabilityPkgs are the packages whose delivery-journal and WAL errors
// are durability failures: a discarded Enqueue or Ack error means a
// document hop was silently lost or will be replayed forever, and a
// discarded pool Sync or Checkpoint error means the caller believes
// state is on disk when it is not — both break the durability contract
// just as surely as a discarded Verify error breaks the trust chain.
var durabilityPkgs = []string{
	"internal/relay",
	"internal/pool",
}

// durabilityFunc matches the journal-mutating operations within those
// packages (exact names: the relay and pool APIs have no prefix
// convention).
var durabilityFunc = regexp.MustCompile(`^(Enqueue|Append|Ack|Fail|DeadLetter|Requeue|Drop|Deliver|Sync|Checkpoint)$`)

// CryptoErr flags discarded or unchecked error returns from the document
// crypto path and the relay delivery journal. In an engine-less WfMS the
// verification code IS the trust boundary: `_, _ = doc.VerifyAll(reg)`
// silently accepts a document whose cascade no longer verifies — and a
// dropped relay journal error silently loses a delivery. Test files are
// exempt — provoking and discarding failures is what they are for.
var CryptoErr = &Analyzer{
	Name: "cryptoerr",
	Doc: "reports discarded error results of dsig/xmlenc/pki/aea/document " +
		"sign, verify, encrypt and decrypt calls, of relay outbox/delivery " +
		"operations, and of pool/os durability syncs and checkpoints " +
		"(exempt in _test.go files)",
	Run: runCryptoErr,
}

func runCryptoErr(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		file := f.AST
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					pass.checkDiscardedCall(file, call, "its results are discarded")
				}
			case *ast.GoStmt:
				pass.checkDiscardedCall(file, st.Call, "its error cannot be observed from a go statement")
			case *ast.DeferStmt:
				pass.checkDiscardedCall(file, st.Call, "its error cannot be observed from a deferred call")
			case *ast.AssignStmt:
				pass.checkBlankedErrors(file, st)
			}
			return true
		})
	}
}

// isCryptoCall reports whether the call targets a protocol-critical
// function — document crypto or relay journal — returning the callee for
// the message.
func (p *Pass) isCryptoCall(file *ast.File, call *ast.CallExpr) (Callee, bool) {
	callee, ok := p.CalleeOf(file, call)
	if !ok {
		return Callee{}, false
	}
	if cryptoErrFunc.MatchString(callee.Name) {
		for _, suffix := range cryptoErrPkgs {
			if callee.InPkg(suffix) {
				return callee, true
			}
		}
	}
	if durabilityFunc.MatchString(callee.Name) {
		for _, suffix := range durabilityPkgs {
			if callee.InPkg(suffix) {
				return callee, true
			}
		}
	}
	// (os.File).Sync is the raw durability primitive under every WAL: a
	// discarded Sync error means acknowledged bytes may not be on disk.
	if callee.Name == "Sync" && callee.PkgPath == "os" {
		return callee, true
	}
	return Callee{}, false
}

// checkDiscardedCall reports a crypto call whose results (including the
// error) are thrown away wholesale.
func (p *Pass) checkDiscardedCall(file *ast.File, call *ast.CallExpr, why string) {
	callee, ok := p.isCryptoCall(file, call)
	if !ok {
		return
	}
	if idxs, typed := p.ErrorResultIndexes(call); typed && len(idxs) == 0 {
		return // provably returns no error
	}
	p.Reportf(call.Pos(), "error returned by %s is unchecked: %s", callee, why)
}

// checkBlankedErrors reports assignments that bind a crypto call's error
// result to the blank identifier (`n, _ := doc.VerifyAll(reg)`).
func (p *Pass) checkBlankedErrors(file *ast.File, st *ast.AssignStmt) {
	// Match the single-call forms: x, _ := f() and parallel a, b = f(), g()
	// with one result each.
	if len(st.Rhs) == 1 {
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		callee, ok := p.isCryptoCall(file, call)
		if !ok {
			return
		}
		idxs, typed := p.ErrorResultIndexes(call)
		if !typed {
			// Heuristic without type information: these APIs return the
			// error last.
			idxs = []int{len(st.Lhs) - 1}
		}
		for _, i := range idxs {
			if i < len(st.Lhs) && isBlank(st.Lhs[i]) {
				p.Reportf(st.Lhs[i].Pos(), "error returned by %s is assigned to _; handle it or route it to the caller", callee)
			}
		}
		return
	}
	for i, rhs := range st.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || i >= len(st.Lhs) || !isBlank(st.Lhs[i]) {
			continue
		}
		callee, ok := p.isCryptoCall(file, call)
		if !ok {
			continue
		}
		if idxs, typed := p.ErrorResultIndexes(call); typed && len(idxs) == 0 {
			continue
		}
		p.Reportf(st.Lhs[i].Pos(), "error returned by %s is assigned to _; handle it or route it to the caller", callee)
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
