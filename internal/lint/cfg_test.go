package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

// parseBody parses src as a file and returns the body of the first
// function declaration.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			return fn.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// callPoint finds the call to name in the CFG and returns its point.
func callPoint(t *testing.T, cfg *CFG, body *ast.BlockStmt, name string) Point {
	t.Helper()
	var target *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
			target = call
			return false
		}
		return true
	})
	if target == nil {
		t.Fatalf("no call to %s in source", name)
	}
	pt, ok := cfg.PointOf(target)
	if !ok {
		t.Fatalf("PointOf(%s) not found in CFG", name)
	}
	return pt
}

// isCallTo reports whether n contains a call to name.
func isCallTo(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		return found
	}
}

func TestCFGStraightLineOrder(t *testing.T) {
	body := parseBody(t, `package p
func f() { a(); b(); c() }
func a(); func b(); func c()`)
	cfg := NewCFG(body)
	a, b, c := callPoint(t, cfg, body, "a"), callPoint(t, cfg, body, "b"), callPoint(t, cfg, body, "c")

	if !cfg.PathExists(a, b, nil) || !cfg.PathExists(a, c, nil) {
		t.Error("a should reach b and c")
	}
	if cfg.PathExists(c, a, nil) {
		t.Error("c must not reach a (no loop)")
	}
	if cfg.PathExists(a, c, isCallTo("b")) {
		t.Error("a → c must be blocked by b on the only path")
	}
}

func TestCFGBranches(t *testing.T) {
	body := parseBody(t, `package p
func f(x bool) {
	a()
	if x {
		b()
	} else {
		d()
	}
	c()
}
func a(); func b(); func c(); func d()`)
	cfg := NewCFG(body)
	a, b, c := callPoint(t, cfg, body, "a"), callPoint(t, cfg, body, "b"), callPoint(t, cfg, body, "c")

	if !cfg.PathExists(a, c, isCallTo("b")) {
		t.Error("the else path from a to c avoids b")
	}
	if cfg.PathExists(a, c, func(n ast.Node) bool { return isCallTo("b")(n) || isCallTo("d")(n) }) {
		t.Error("every path from a to c passes b or d")
	}
	if cfg.PathExists(b, a, nil) {
		t.Error("b must not reach a")
	}
	if !cfg.PathExists(b, c, nil) {
		t.Error("b should reach c")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	body := parseBody(t, `package p
func f(xs []int) {
	for range xs {
		a()
		b()
	}
	c()
}
func a(); func b(); func c()`)
	cfg := NewCFG(body)
	a, b, c := callPoint(t, cfg, body, "a"), callPoint(t, cfg, body, "b"), callPoint(t, cfg, body, "c")

	if !cfg.PathExists(b, a, nil) {
		t.Error("b reaches a around the loop back edge")
	}
	if cfg.PathExists(b, b, isCallTo("a")) {
		// b can only re-reach itself by looping through the body, which
		// runs a first.
		t.Error("b → b around the loop must be blocked by a")
	}
	if !cfg.PathExists(a, c, nil) {
		t.Error("a should reach c after the loop")
	}
	// From function entry, c is reachable without ever running a (empty
	// slice), but a is never reachable without entering the loop body.
	if !cfg.PathExists(cfg.EntryPoint(), c, isCallTo("a")) {
		t.Error("empty-range path to c avoids a")
	}
}

func TestCFGEarlyReturnAndSwitch(t *testing.T) {
	body := parseBody(t, `package p
func f(x int) {
	switch x {
	case 1:
		a()
		return
	case 2:
		b()
	}
	c()
}
func a(); func b(); func c()`)
	cfg := NewCFG(body)
	a, b, c := callPoint(t, cfg, body, "a"), callPoint(t, cfg, body, "b"), callPoint(t, cfg, body, "c")

	if cfg.PathExists(a, c, nil) {
		t.Error("case 1 returns: a must not reach c")
	}
	if !cfg.PathExists(b, c, nil) {
		t.Error("case 2 falls out of the switch to c")
	}
	if !cfg.PathExists(cfg.EntryPoint(), c, func(n ast.Node) bool {
		return isCallTo("a")(n) || isCallTo("b")(n)
	}) {
		t.Error("the no-case-matches path reaches c without a or b")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	body := parseBody(t, `package p
func f(xs []int) {
	for _, x := range xs {
		if x == 0 {
			continue
		}
		if x < 0 {
			break
		}
		a()
	}
	c()
}
func a(); func c()`)
	cfg := NewCFG(body)
	a, c := callPoint(t, cfg, body, "a"), callPoint(t, cfg, body, "c")

	if !cfg.PathExists(cfg.EntryPoint(), c, isCallTo("a")) {
		t.Error("break/continue/empty paths reach c without a")
	}
	if !cfg.PathExists(a, a, nil) {
		t.Error("a reaches itself around the loop")
	}
	if !cfg.PathExists(a, c, nil) {
		t.Error("a reaches c when the loop finishes")
	}
}

func TestCFGPointOfInnermost(t *testing.T) {
	body := parseBody(t, `package p
func f() bool {
	if a() {
		return true
	}
	return false
}
func a() bool`)
	cfg := NewCFG(body)
	pt := callPoint(t, cfg, body, "a")
	// The call lives in the if-condition node, which must appear in the
	// entry chain before the return nodes.
	if _, ok := pt.Block.Nodes[pt.Index].(*ast.CallExpr); !ok {
		t.Errorf("PointOf(a()) node = %T, want the condition expression", pt.Block.Nodes[pt.Index])
	}
}

func TestCFGDeterministicBlockOrder(t *testing.T) {
	src := `package p
func f(x int) {
	if x > 0 {
		a()
	}
	for x > 0 {
		b()
		x--
	}
}
func a(); func b()`
	shape := func() []int {
		var out []int
		for _, b := range NewCFG(parseBody(t, src)).Blocks {
			out = append(out, len(b.Nodes), len(b.Succs))
			for _, s := range b.Succs {
				out = append(out, s.Index)
			}
		}
		return out
	}
	first := shape()
	for i := 0; i < 3; i++ {
		if again := shape(); !reflect.DeepEqual(first, again) {
			t.Fatalf("CFG shape differs across builds:\n%v\n%v", first, again)
		}
	}
}
