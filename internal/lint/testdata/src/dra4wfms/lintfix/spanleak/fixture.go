// Package spanleak seeds telemetry-span lifecycle violations for the
// spanleak analyzer's golden test.
package spanleak

import (
	"context"
	"errors"

	"dra4wfms/internal/telemetry"
	"dra4wfms/internal/trace"
)

var tel = telemetry.Default()

func goodDeferred() error {
	defer tel.StartSpan("good_seconds").End()
	return nil
}

func goodSequential(fail bool) error {
	span := tel.StartSpan("seq_seconds")
	err := work(fail)
	span.End()
	if err != nil {
		return err
	}
	return nil
}

func goodBranchEnd(fail bool) error {
	span := tel.StartSpan("branch_seconds")
	if fail {
		span.End()
		return errors.New("fail")
	}
	span.End()
	return nil
}

func leakEarlyReturn(fail bool) error {
	span := tel.StartSpan("leak_seconds")
	if fail {
		return errors.New("early") // want "return leaks telemetry span span"
	}
	span.End()
	return nil
}

// neverEnded leaves the span entirely unused ("declared and not used" is
// a type error the lenient loader tolerates); any other use of the
// variable counts as an escape and ends lexical tracking.
func neverEnded() {
	span := tel.StartSpan("never_seconds") // want "never ended"
}

func dropped() {
	tel.StartSpan("dropped_seconds")   // want "discarded"
	_ = tel.StartSpan("blank_seconds") // want "discarded"
}

// escapes hands the span to a closure; ending it becomes the caller's
// responsibility, so the analyzer stays quiet.
func escapes() func() {
	span := tel.StartSpan("escape_seconds")
	return func() { span.End() }
}

func suppressed(fail bool) error {
	span := tel.StartSpan("supp_seconds")
	if fail {
		//lint:ignore spanleak fixture demo: abandoned span is observed via the leak counter
		return errors.New("early")
	}
	span.End()
	return nil
}

func work(fail bool) error {
	if fail {
		return errors.New("work failed")
	}
	return nil
}

// ---- context-aware pair starters (StartSpanCtx, trace StartSpan/StartRoot) ----

var col = trace.Default()

func goodCtxDeferred(ctx context.Context) error {
	ctx, span := tel.StartSpanCtx(ctx, "good_ctx_seconds")
	defer span.End()
	return use(ctx)
}

func goodTraceRoot(ctx context.Context) error {
	ctx, root := col.StartRoot(ctx, "client", "drive_seconds")
	defer root.End()
	return use(ctx)
}

func leakCtxEarlyReturn(ctx context.Context, fail bool) error {
	ctx, span := tel.StartSpanCtx(ctx, "leak_ctx_seconds")
	if fail {
		return errors.New("early") // want "return leaks telemetry span span"
	}
	span.End()
	return use(ctx)
}

// neverEndedTrace starts a traced span and forgets it entirely: besides
// the lost observation, its node vanishes from the distributed trace
// tree, orphaning children started under the returned context.
func neverEndedTrace(ctx context.Context) error {
	ctx, span := col.StartSpan(ctx, "never_trace_seconds") // want "never ended"
	return use(ctx)
}

func droppedCtx(ctx context.Context) {
	_, _ = tel.StartSpanCtx(ctx, "dropped_ctx_seconds") // want "discarded"
	tel.StartSpanCtx(ctx, "stmt_ctx_seconds")           // want "discarded"
}

// escapesCtx passes the pair span onward (SetStatus is a use): the
// analyzer leaves ownership to the reader.
func escapesCtx(ctx context.Context, fail bool) error {
	ctx, span := col.StartSpan(ctx, "escape_ctx_seconds")
	defer span.End()
	if fail {
		span.SetStatus("error")
		return errors.New("fail")
	}
	return use(ctx)
}

func use(ctx context.Context) error {
	_ = ctx
	return nil
}
