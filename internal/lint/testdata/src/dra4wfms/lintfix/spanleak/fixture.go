// Package spanleak seeds telemetry-span lifecycle violations for the
// spanleak analyzer's golden test.
package spanleak

import (
	"errors"

	"dra4wfms/internal/telemetry"
)

var tel = telemetry.Default()

func goodDeferred() error {
	defer tel.StartSpan("good_seconds").End()
	return nil
}

func goodSequential(fail bool) error {
	span := tel.StartSpan("seq_seconds")
	err := work(fail)
	span.End()
	if err != nil {
		return err
	}
	return nil
}

func goodBranchEnd(fail bool) error {
	span := tel.StartSpan("branch_seconds")
	if fail {
		span.End()
		return errors.New("fail")
	}
	span.End()
	return nil
}

func leakEarlyReturn(fail bool) error {
	span := tel.StartSpan("leak_seconds")
	if fail {
		return errors.New("early") // want "return leaks telemetry span span"
	}
	span.End()
	return nil
}

// neverEnded leaves the span entirely unused ("declared and not used" is
// a type error the lenient loader tolerates); any other use of the
// variable counts as an escape and ends lexical tracking.
func neverEnded() {
	span := tel.StartSpan("never_seconds") // want "never ended"
}

func dropped() {
	tel.StartSpan("dropped_seconds")   // want "discarded"
	_ = tel.StartSpan("blank_seconds") // want "discarded"
}

// escapes hands the span to a closure; ending it becomes the caller's
// responsibility, so the analyzer stays quiet.
func escapes() func() {
	span := tel.StartSpan("escape_seconds")
	return func() { span.End() }
}

func suppressed(fail bool) error {
	span := tel.StartSpan("supp_seconds")
	if fail {
		//lint:ignore spanleak fixture demo: abandoned span is observed via the leak counter
		return errors.New("early")
	}
	span.End()
	return nil
}

func work(fail bool) error {
	if fail {
		return errors.New("work failed")
	}
	return nil
}
