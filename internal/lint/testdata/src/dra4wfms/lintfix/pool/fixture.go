// Package pool seeds discarded-durability-error violations for the
// cryptoerr analyzer's WAL coverage: a dropped pool Sync or Checkpoint
// error — or a dropped (os.File).Sync under any hand-rolled journal —
// means the caller believes state is on disk when the kernel may have
// refused it.
package pool

import (
	"os"

	"dra4wfms/internal/pool"
)

func bad(s *pool.Store, f *os.File) {
	s.Sync()           // want "error returned by (pool.Store).Sync is unchecked"
	_ = s.Checkpoint() // want "error returned by (pool.Store).Checkpoint is assigned to _"
	f.Sync()           // want "error returned by (os.File).Sync is unchecked"
	go s.Checkpoint()  // want "error cannot be observed from a go statement"
	defer f.Sync()     // want "error cannot be observed from a deferred call"
}

func suppressed(s *pool.Store) {
	//lint:ignore cryptoerr fixture demo: periodic checkpoint retried next tick, WAL preserves durability
	_ = s.Checkpoint()
}

func checked(s *pool.Store, f *os.File) error {
	if err := s.Sync(); err != nil {
		return err
	}
	return f.Sync()
}
