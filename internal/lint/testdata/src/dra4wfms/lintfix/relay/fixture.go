// Package relay seeds discarded-durability-error violations for the
// cryptoerr analyzer's relay coverage: a dropped journal error silently
// loses a delivery, so the analyzer treats the outbox and transport API
// like the crypto path.
package relay

import (
	"context"

	"dra4wfms/internal/relay"
)

func bad(r *relay.Relay, ob *relay.Outbox, tr relay.Transport, e relay.Entry) {
	r.Enqueue("http://portal", "store", "k", nil)       // want "error returned by (relay.Relay).Enqueue is unchecked"
	_, _, _ = r.Enqueue("http://portal", "s", "k", nil) // want "error returned by (relay.Relay).Enqueue is assigned to _"
	ob.Ack(e.Seq)                                       // want "error returned by (relay.Outbox).Ack is unchecked"
	_ = ob.Requeue(e.Seq)                               // want "error returned by (relay.Outbox).Requeue is assigned to _"
	n, _ := ob.Fail(e.Seq)                              // want "error returned by (relay.Outbox).Fail is assigned to _"
	_ = n
	go tr.Deliver(context.Background(), e) // want "error cannot be observed from a go statement"
	defer ob.DeadLetter(e.Seq, "gave up")  // want "error cannot be observed from a deferred call"
}

func suppressed(ob *relay.Outbox, e relay.Entry) {
	//lint:ignore cryptoerr fixture demo: best-effort cleanup where losing the entry is acceptable
	_ = ob.Drop(e.Seq)
}

func checked(r *relay.Relay, ob *relay.Outbox) error {
	if _, _, err := r.Enqueue("d", "k", "key", nil); err != nil {
		return err
	}
	return ob.Ack(1)
}
