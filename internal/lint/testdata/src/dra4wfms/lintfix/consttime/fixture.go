// Package consttime seeds variable-time comparison violations for the
// consttime analyzer's golden test.
package consttime

import (
	"bytes"
	"crypto/subtle"
)

func bad(digest, other, wantMAC, gotMAC []byte, sigValue, presented string) bool {
	if bytes.Equal(digest, other) { // want "bytes.Equal on digest"
		return true
	}
	if bytes.Compare(wantMAC, gotMAC) == 0 { // want "bytes.Compare on wantMAC"
		return true
	}
	return sigValue == presented // want "== comparison of sigValue"
}

func suppressed(digest, other []byte) bool {
	//lint:ignore consttime fixture demo: comparison feeds a cache key, not an accept/reject decision
	return bytes.Equal(digest, other)
}

func good(digest []byte, sigValue, signer string, payload, copyOf []byte) bool {
	if len(digest) == 0 {
		return false
	}
	if sigValue == "" || signer == "designer" {
		return false
	}
	if bytes.Equal(payload, copyOf) { // neither operand has a sensitive name
		return false
	}
	return constantTimeEqual(digest, digest)
}

// constantTimeEqual is the remediation the analyzer points at.
func constantTimeEqual(a, b []byte) bool {
	return subtle.ConstantTimeCompare(a, b) == 1
}

// macSuite is a toy dsig.Suite-shaped implementation; suite Verify
// methods are exactly where variable-time signature comparisons creep in.
type macSuite struct{}

func (macSuite) Alg() string { return "toy-mac" }

func (macSuite) Sign(key any, msg []byte) ([]byte, error) { return msg, nil }

func (macSuite) Verify(pub any, msg, presentedSig []byte) error {
	recomputedSig := append([]byte(nil), msg...)
	if !bytes.Equal(recomputedSig, presentedSig) { // want "bytes.Equal on recomputedSig"
		return errBadSig
	}
	return nil
}

// okSuite is the remediation: the same check through subtle.
type okSuite struct{ macSuite }

func (okSuite) Verify(pub any, msg, presentedSig []byte) error {
	recomputedSig := append([]byte(nil), msg...)
	if !constantTimeEqual(recomputedSig, presentedSig) {
		return errBadSig
	}
	return nil
}

var errBadSig = errorString("bad signature")

type errorString string

func (e errorString) Error() string { return string(e) }
