// Package ackorder seeds ack-before-durable orderings for the ackorder
// analyzer's golden test. The bad shapes are frozen from the PR 5
// "acked then lost" bugs: the TFC record endpoint wrote its success
// response before the replay-guard journal append, and a compaction
// path acknowledged with the WAL work skipped.
package ackorder

import (
	"errors"

	"dra4wfms/internal/chaos"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/poolcluster"
	"dra4wfms/internal/relay"
)

// responder stands in for the HTTP layer that promises success to the
// submitting AEA.
type responder struct{}

func (responder) respond(status int, msg string) {}
func (responder) notifyProgress(percent int)     {}
func (responder) replyRecorded(seq uint64) error { return nil }

var resp responder

var errEmpty = errors.New("empty payload")

// badAckThenJournal freezes the PR 5 TFC-record shape: the success
// response leaves the process before the record reaches the journal; a
// crash in the gap loses a write the sender believes is recorded.
func badAckThenJournal(o *relay.Outbox, payload []byte) error {
	resp.respond(200, "recorded") // want "acknowledges success before (relay.Outbox).Append"
	_, _, err := o.Append("tfc", "record", "k", payload)
	return err
}

// badAckBeforeSync appends first but acknowledges before the sync that
// makes the append crash-proof.
func badAckBeforeSync(s *pool.Store, o *relay.Outbox, payload []byte) error {
	if _, _, err := o.Append("tfc", "record", "k", payload); err != nil {
		return err
	}
	if err := resp.replyRecorded(1); err != nil { // want "acknowledges success before (pool.Store).Sync"
		return err
	}
	return s.Sync()
}

// badSkippedBranch freezes the second PR 5 shape: on the not-dirty
// branch the acknowledgement runs with no journal work behind it while
// the sync is still ahead.
func badSkippedBranch(s *pool.Store, dirty bool) error {
	if dirty {
		if err := s.Checkpoint(); err != nil {
			return err
		}
	}
	resp.respond(200, "compacted") // want "acknowledges success before"
	return s.Sync()
}

// goodJournalFirst is the protocol order: append → sync → ack. The
// failure NACKs respond after the durable call on their path and promise
// nothing further.
func goodJournalFirst(o *relay.Outbox, s *pool.Store, payload []byte) error {
	if _, _, err := o.Append("tfc", "record", "k", payload); err != nil {
		resp.respond(500, "journal append failed")
		return err
	}
	if err := s.Sync(); err != nil {
		resp.respond(500, "journal sync failed")
		return err
	}
	resp.respond(200, "recorded")
	return nil
}

// goodErrorNack responds before any journaling — but only on the
// validation path, which returns without ever promising durability.
func goodErrorNack(o *relay.Outbox, payload []byte) error {
	if len(payload) == 0 {
		resp.respond(400, "empty payload")
		return errEmpty
	}
	if _, _, err := o.Append("tfc", "record", "k", payload); err != nil {
		return err
	}
	resp.respond(200, "recorded")
	return nil
}

// goodLoopAckAfterAppend acknowledges each batch after its append; the
// loop back edge must not read as "ack before the next iteration's
// append".
func goodLoopAckAfterAppend(o *relay.Outbox, batches [][]byte) error {
	for _, b := range batches {
		if _, _, err := o.Append("tfc", "record", "k", b); err != nil {
			return err
		}
		resp.respond(200, "recorded")
	}
	return nil
}

// badAckBeforeReplicationJournal freezes the clustered-pool shape: the
// coordinator applies the mutation on the primary and acknowledges the
// write before journaling the backup's replication intent. A coordinator
// crash in the gap acknowledges a write that exists on exactly one node —
// kill that node next and the "acknowledged" write is gone.
func badAckBeforeReplicationJournal(c *poolcluster.Coordinator, frame []byte) error {
	if err := c.ApplyPrimary("region-0002", frame); err != nil {
		return err
	}
	if err := resp.replyRecorded(7); err != nil { // want "acknowledges success before (poolcluster.Coordinator).JournalReplication"
		return err
	}
	return c.JournalReplication("region-0002", "n2", frame)
}

// goodReplicationJournalFirst is the clustered protocol order: primary
// apply → journal every backup's intent → ack. Redelivery after a crash
// starts from the journal, so the ack survives any single node loss.
func goodReplicationJournalFirst(c *poolcluster.Coordinator, frame []byte, backups []string) error {
	if err := c.ApplyPrimary("region-0002", frame); err != nil {
		return err
	}
	for _, b := range backups {
		if err := c.JournalReplication("region-0002", b, frame); err != nil {
			return err
		}
	}
	return resp.replyRecorded(7)
}

// badHealAckBeforeCatchupJournal freezes the chaos-drill shape: the
// drill heals a partition and acknowledges "healed and converged"
// before the coordinator journals the catch-up replication intent the
// partition accumulated. Healing the network is not a durability
// point — a coordinator crash in the gap still strands the rejoined
// backup behind an acknowledged write.
func badHealAckBeforeCatchupJournal(n *chaos.Network, c *poolcluster.Coordinator, frame []byte) error {
	n.HealNode("n2")
	resp.respond(200, "healed") // want "acknowledges success before (poolcluster.Coordinator).JournalReplication"
	return c.JournalReplication("region-0002", "n2", frame)
}

// goodHealJournalFirst is the drill order: heal, journal the catch-up
// intent, then acknowledge. The chaos directive itself needs no
// journaling — only the write it unblocks does.
func goodHealJournalFirst(n *chaos.Network, c *poolcluster.Coordinator, frame []byte) error {
	n.HealNode("n2")
	if err := c.JournalReplication("region-0002", "n2", frame); err != nil {
		resp.respond(500, "catch-up journal failed")
		return err
	}
	resp.respond(200, "healed")
	return nil
}

// notifyFirstByDesign sends a progress notification before the append:
// an ack-shaped call that deliberately promises nothing durable.
func notifyFirstByDesign(o *relay.Outbox, payload []byte) error {
	//lint:ignore ackorder fixture demo: progress notification, not a durability promise
	resp.notifyProgress(50)
	_, _, err := o.Append("tfc", "record", "k", payload)
	return err
}
