// Package lockio seeds lock-held-across-I/O violations for the lockio
// analyzer's golden test.
package lockio

import (
	"net/http"
	"os"
	"sync"

	"dra4wfms/internal/httpapi"
)

type cache struct {
	mu     sync.Mutex
	urls   map[string]string
	client *httpapi.Client
}

func (c *cache) badDeferred(target string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := http.Get(target) // want "http.Get performs I/O while c.mu is locked"
	return err
}

func (c *cache) badClient(doc []byte) error {
	c.mu.Lock()
	err := c.client.Store(doc) // want "(httpapi.Client).Store performs I/O while c.mu is locked"
	c.mu.Unlock()
	return err
}

func (c *cache) badFile(path string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return os.ReadFile(path) // want "os.ReadFile performs I/O while c.mu is locked"
}

func (c *cache) good(target string) error {
	c.mu.Lock()
	u := c.urls[target]
	c.mu.Unlock()
	_, err := http.Get(u) // lock already released
	return err
}

// goodAsync launches the request on another goroutine; the lock is not
// held on that goroutine's stack.
func (c *cache) goodAsync(target string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		_, _ = http.Get(target)
	}()
}

func (c *cache) suppressed(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:ignore lockio fixture demo: startup-only write before any request traffic
	return os.WriteFile(path, nil, 0o600)
}
