// Test files are exempt from cryptoerr: provoking and discarding
// verification failures is what they are for.
package cryptoerr

import (
	"testing"

	"dra4wfms/internal/dsig"
	"dra4wfms/internal/xmlenc"
)

func TestExemptInTests(t *testing.T) {
	var doc dsig.Document
	_, _ = doc.VerifyAll(nil)
	_, _ = xmlenc.Decrypt(nil)
	dsig.Verify(nil, nil)
}
