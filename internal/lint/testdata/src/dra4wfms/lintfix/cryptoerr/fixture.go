// Package cryptoerr seeds discarded-crypto-error violations for the
// cryptoerr analyzer's golden test.
package cryptoerr

import (
	"dra4wfms/internal/dsig"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/xmlenc"
)

func bad(doc *dsig.Document, kp *pki.KeyPair, msg, sig []byte) {
	dsig.Verify(msg, sig)      // want "error returned by dsig.Verify is unchecked"
	n, _ := doc.VerifyAll(nil) // want "error returned by (dsig.Document).VerifyAll is assigned to _"
	_ = n
	_, _ = xmlenc.Decrypt(msg) // want "error returned by xmlenc.Decrypt is assigned to _"
	out, _ := kp.Sign(msg)     // want "error returned by (pki.KeyPair).Sign is assigned to _"
	_ = out
	go dsig.Verify(msg, sig) // want "error returned by dsig.Verify is unchecked"
}

func suppressedTrailing(msg, sig []byte) {
	_ = dsig.Verify(msg, sig) //lint:ignore cryptoerr fixture demo of trailing suppression
}

func suppressedAbove(msg []byte) {
	//lint:ignore cryptoerr fixture demo of standalone suppression
	_, _ = xmlenc.Encrypt(msg)
}

func ignoreWithoutReasonIsInert(msg, sig []byte) {
	//lint:ignore cryptoerr
	_ = dsig.Verify(msg, sig) // want "error returned by dsig.Verify is assigned to _"
}

func checked(msg, sig []byte) error {
	if err := dsig.Verify(msg, sig); err != nil {
		return err
	}
	out, err := xmlenc.Encrypt(msg)
	_ = out
	return err
}

// signerName discards no error: SignerOf has a crypto-ish prefix but a
// single result, so the typed check skips it.
func signerName(sig []byte) string {
	return dsig.SignerOf(sig)
}

// suiteBad exercises the pluggable-suite surface: Sign/Verify reached
// through the dsig.Suite interface are the same trust boundary as the
// package-level functions, so their errors are equally unignorable.
func suiteBad(s dsig.Suite, pub any, msg, sig []byte) {
	s.Verify(pub, msg, sig)    // want "error returned by (dsig.Suite).Verify is unchecked"
	out, _ := s.Sign(pub, msg) // want "error returned by (dsig.Suite).Sign is assigned to _"
	_ = out
	_, _ = dsig.SignWith(s, msg) // want "error returned by dsig.SignWith is assigned to _"
	go s.Verify(pub, msg, sig)   // want "error returned by (dsig.Suite).Verify is unchecked"
}

// suiteChecked is the clean path: errors observed, algorithm string free.
func suiteChecked(s dsig.Suite, pub any, msg, sig []byte) (string, error) {
	if err := s.Verify(pub, msg, sig); err != nil {
		return "", err
	}
	return s.Alg(), nil
}
