// Package ctxprop seeds trace-context threading violations for the
// ctxprop analyzer's golden test: call chains that derive a span context
// and then hand the stale parent context downstream while the span is
// still open, detaching the downstream spans from the trace subtree.
package ctxprop

import (
	"context"

	"dra4wfms/internal/chaos"
	"dra4wfms/internal/telemetry"
	"dra4wfms/internal/trace"
)

var tel = telemetry.Default()
var col = trace.Default()

func downstream(ctx context.Context) error { return nil }

func work() {}

func watchdog(ctx context.Context) {}

// goodShadowing rebinds the parent name to the derived context: the
// stale parent is unreachable below the start.
func goodShadowing(ctx context.Context) error {
	ctx, span := tel.StartSpanCtx(ctx, "good_seconds")
	defer span.End()
	return downstream(ctx)
}

// goodLeaf discards the derived context but makes no downstream
// context-carrying call — the legitimate leaf-span idiom.
func goodLeaf(ctx context.Context) int {
	_, span := tel.StartSpanCtx(ctx, "leaf_seconds")
	defer span.End()
	work()
	return 42
}

// goodSequentialSiblings starts the second span from the parent only
// after the first has ended: sequential siblings, not a lost level.
func goodSequentialSiblings(ctx context.Context) {
	_, s1 := col.StartSpan(ctx, "first")
	work()
	s1.End()
	_, s2 := col.StartSpan(ctx, "second")
	work()
	s2.End()
}

// goodEndedBeforeReuse ends the span before the parent context travels
// again.
func goodEndedBeforeReuse(ctx context.Context) error {
	_, span := tel.StartSpanCtx(ctx, "early_seconds")
	work()
	span.End()
	return downstream(ctx)
}

// badStaleParent discards the derived context and passes the parent
// downstream with the span open: the downstream spans attach to the
// parent and this span's subtree is empty.
func badStaleParent(ctx context.Context) error {
	_, span := tel.StartSpanCtx(ctx, "stale_seconds")
	defer span.End()
	return downstream(ctx) // want "receives the parent context ctx"
}

// badBranchLeak threads the derived context on one path but the stale
// parent on the other.
func badBranchLeak(ctx context.Context, fast bool) error {
	tctx, span := col.StartRoot(ctx, "portal", "op")
	defer span.End()
	if fast {
		return downstream(ctx) // want "receives the parent context ctx"
	}
	return downstream(tctx)
}

// badNestedStart starts a child span from the parent context while the
// first span is open: the "child" becomes a sibling.
func badNestedStart(ctx context.Context) {
	_, outer := col.StartSpan(ctx, "outer")
	defer outer.End()
	_, inner := col.StartSpan(ctx, "inner") // want "receives the parent context ctx"
	work()
	inner.End()
}

// badChaosHopStaleParent spans a fault-injected hop but hands the
// chaos transport the stale parent context: the injected latency and
// the real delivery attach outside the hop's span, and a drill replay
// cannot line its faults up against the trace. Deadline propagation
// breaks the same way — the hop escapes the span context's budget.
func badChaosHopStaleParent(ctx context.Context, n *chaos.Network) error {
	tctx, span := col.StartSpan(ctx, "chaos_hop")
	defer span.End()
	_ = tctx
	return n.Deliver(ctx, "coord", "n2") // want "receives the parent context ctx"
}

// goodChaosHopThreaded threads the span context through the fault
// model, so injected faults and the deadline budget stay inside the
// hop's subtree.
func goodChaosHopThreaded(ctx context.Context, n *chaos.Network) error {
	tctx, span := col.StartSpan(ctx, "chaos_hop")
	defer span.End()
	return n.Deliver(tctx, "coord", "n2")
}

// fanOutByDesign hands the parent to a goroutine that outlives the span
// on purpose — acknowledged with a reasoned suppression.
func fanOutByDesign(ctx context.Context) {
	_, span := tel.StartSpanCtx(ctx, "fanout_seconds")
	defer span.End()
	//lint:ignore ctxprop fixture demo: the watchdog outlives this span by design
	go watchdog(ctx)
	work()
}
