// Package gen stands in for workload generators (internal/wfgen,
// cmd/drabench): outside the nondeterminism analyzer's scope, so its
// math/rand use must produce no findings.
package gen

import "math/rand"

// Workload draws a deterministic-enough synthetic load; generators are
// allowed to use math/rand.
func Workload(n int, seed int64) []int {
	r := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(1000)
	}
	return out
}
