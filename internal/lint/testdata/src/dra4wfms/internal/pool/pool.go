// Package pool is a fixture stub: it mirrors the real module's durable
// store API surface for the cryptoerr analyzer and, being a durability
// package (import-path suffix internal/pool), seeds the nondeterminism
// analyzer's crash-recovery scope — replay must rebuild byte-identical
// state, so clock and PRNG reads reachable from recover/replay/restore
// functions are violations.
package pool

import (
	"math/rand"
	"time"
)

// Store mirrors pool.Store.
type Store struct{}

// Sync mirrors pool.(*Store).Sync.
func (s *Store) Sync() error { return nil }

// Checkpoint mirrors pool.(*Store).Checkpoint.
func (s *Store) Checkpoint() error { return nil }

// KeyValue mirrors pool.KeyValue.
type KeyValue struct {
	Row     string
	Version int64
}

// recoverWAL is a seed function for the crash-recovery reachability walk.
func recoverWAL(records []KeyValue) error {
	for range records {
		if stampCell().IsZero() {
			return nil
		}
	}
	return nil
}

func stampCell() time.Time {
	return time.Now() // want "time.Now makes crash recovery irreproducible"
}

// replayBackoff is a seed by name; its PRNG read is acknowledged with a
// reasoned suppression.
func replayBackoff() time.Duration {
	//lint:ignore nondeterminism fixture demo: backoff jitter shapes retry timing, not recovered state
	return time.Duration(rand.Intn(100)) * time.Millisecond
}

// jitter is not reachable from any recovery seed — and the math/rand
// import ban does not extend to durability packages, where jitter is
// legitimate retry machinery.
func jitter() time.Duration {
	return time.Duration(rand.Intn(50)) * time.Millisecond
}
