// Package xmlenc is a fixture stub mirroring the real module's encryption
// API surface for analyzer tests.
package xmlenc

// Encrypt mirrors xmlenc.Encrypt.
func Encrypt(plain []byte) ([]byte, error) { return plain, nil }

// Decrypt mirrors xmlenc.Decrypt.
func Decrypt(cipher []byte) ([]byte, error) { return cipher, nil }

// DecryptVisible mirrors xmlenc.DecryptVisible: (count, error).
func DecryptVisible(doc any) (int, error) { return 0, nil }
