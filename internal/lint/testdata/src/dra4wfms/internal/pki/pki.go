// Package pki is a fixture stub mirroring the real module's key API
// surface for analyzer tests.
package pki

// KeyPair mirrors pki.KeyPair.
type KeyPair struct{ Owner string }

// Sign mirrors (*pki.KeyPair).Sign.
func (k *KeyPair) Sign(msg []byte) ([]byte, error) { return msg, nil }

// Verify mirrors pki.Verify.
func Verify(pub any, msg, sig []byte) error { return nil }
