// Package poolcluster is a fixture stub mirroring the clustered
// document pool's coordinator surface for analyzer tests. As a
// durability package (import-path suffix internal/poolcluster), its
// journal-worded calls are ackorder durability points: a write is
// "acknowledged" only once the primary applied it AND the backups'
// replication intents are journaled.
package poolcluster

// Coordinator mirrors the poolcluster.Cluster write path.
type Coordinator struct{}

// ApplyPrimary mirrors the synchronous primary apply.
func (c *Coordinator) ApplyPrimary(region string, frame []byte) error { return nil }

// JournalReplication mirrors journaling a backup's replication intent
// into the coordinator outbox — the durability point of the backup copy.
func (c *Coordinator) JournalReplication(region, backup string, frame []byte) error { return nil }
