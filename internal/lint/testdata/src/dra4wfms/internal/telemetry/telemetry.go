// Package telemetry is a fixture stub mirroring the real module's span
// API surface for analyzer tests.
package telemetry

import "time"

// Registry mirrors telemetry.Registry.
type Registry struct{}

// Default mirrors telemetry.Default.
func Default() *Registry { return &Registry{} }

// Span mirrors telemetry.Span.
type Span struct{ start time.Time }

// StartSpan mirrors telemetry.(*Registry).StartSpan.
func (r *Registry) StartSpan(name string, labels ...string) *Span {
	return &Span{start: time.Now()}
}

// End mirrors telemetry.(*Span).End.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}
