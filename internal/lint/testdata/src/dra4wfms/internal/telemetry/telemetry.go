// Package telemetry is a fixture stub mirroring the real module's span
// API surface for analyzer tests.
package telemetry

import (
	"context"
	"time"
)

// Registry mirrors telemetry.Registry.
type Registry struct{}

// Default mirrors telemetry.Default.
func Default() *Registry { return &Registry{} }

// Span mirrors telemetry.Span.
type Span struct{ start time.Time }

// StartSpan mirrors telemetry.(*Registry).StartSpan.
func (r *Registry) StartSpan(name string, labels ...string) *Span {
	return &Span{start: time.Now()}
}

// End mirrors telemetry.(*Span).End.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// StartSpanCtx mirrors telemetry.(*Registry).StartSpanCtx: the
// context-aware starter returning a (ctx, span) pair.
func (r *Registry) StartSpanCtx(ctx context.Context, name string, labels ...string) (context.Context, *Span) {
	return ctx, &Span{start: time.Now()}
}
