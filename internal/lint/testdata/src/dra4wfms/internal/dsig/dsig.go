// Package dsig is a fixture stub mirroring the real module's signature
// API surface for analyzer tests.
package dsig

// Sign mirrors dsig.Sign: it returns a signature and an error.
func Sign(msg []byte) ([]byte, error) { return msg, nil }

// Verify mirrors dsig.Verify.
func Verify(msg, sig []byte) error { return nil }

// VerifyAll mirrors dsig.VerifyAll: (count, error).
func VerifyAll(msgs [][]byte) (int, error) { return len(msgs), nil }

// SignerOf returns a principal name, not crypto material.
func SignerOf(sig []byte) string { return "someone" }

// Document carries a VerifyAll method mirroring document.Document.
type Document struct{}

// VerifyAll mirrors (*document.Document).VerifyAll.
func (d *Document) VerifyAll(resolver any) (int, error) { return 0, nil }

// Suite mirrors dsig.Suite: one pluggable signature algorithm.
type Suite interface {
	// Alg returns the SignatureMethod Algorithm identifier.
	Alg() string
	// Sign signs msg; discarding its error ships an unsigned document.
	Sign(key any, msg []byte) ([]byte, error)
	// Verify checks sig over msg; discarding its error accepts forgeries.
	Verify(pub any, msg, sig []byte) error
}

// SuiteFor mirrors dsig.SuiteFor.
func SuiteFor(alg string) (Suite, bool) { return nil, false }

// SignWith mirrors dsig.SignWith.
func SignWith(s Suite, msg []byte) ([]byte, error) { return msg, nil }
