// Package relay is a fixture stub mirroring the real module's outbox and
// delivery API surface for analyzer tests.
package relay

import "context"

// Entry mirrors relay.Entry.
type Entry struct {
	Seq     uint64
	Dest    string
	Kind    string
	Key     string
	Payload []byte
}

// Outbox mirrors relay.Outbox.
type Outbox struct{}

// Append mirrors relay.(*Outbox).Append.
func (o *Outbox) Append(dest, kind, key string, payload []byte) (Entry, bool, error) {
	return Entry{}, false, nil
}

// Ack mirrors relay.(*Outbox).Ack.
func (o *Outbox) Ack(seq uint64) error { return nil }

// Fail mirrors relay.(*Outbox).Fail.
func (o *Outbox) Fail(seq uint64) (int, error) { return 0, nil }

// DeadLetter mirrors relay.(*Outbox).DeadLetter.
func (o *Outbox) DeadLetter(seq uint64, reason string) error { return nil }

// Requeue mirrors relay.(*Outbox).Requeue.
func (o *Outbox) Requeue(seq uint64) error { return nil }

// Drop mirrors relay.(*Outbox).Drop.
func (o *Outbox) Drop(seq uint64) error { return nil }

// Transport mirrors relay.Transport.
type Transport interface {
	Deliver(ctx context.Context, e Entry) error
}

// Relay mirrors relay.Relay.
type Relay struct{}

// Enqueue mirrors relay.(*Relay).Enqueue.
func (r *Relay) Enqueue(dest, kind, key string, payload []byte) (Entry, bool, error) {
	return Entry{}, false, nil
}
