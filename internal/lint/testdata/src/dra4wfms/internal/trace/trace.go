// Package trace is a fixture stub mirroring the real module's collector
// span API surface for analyzer tests.
package trace

import "context"

// Collector mirrors trace.Collector.
type Collector struct{}

// Default mirrors trace.Default.
func Default() *Collector { return &Collector{} }

// Span mirrors trace.Span.
type Span struct{}

// StartRoot mirrors trace.(*Collector).StartRoot.
func (c *Collector) StartRoot(ctx context.Context, tier, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

// StartSpan mirrors trace.(*Collector).StartSpan.
func (c *Collector) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

// End mirrors trace.(*Span).End.
func (s *Span) End() {}

// SetStatus mirrors trace.(*Span).SetStatus.
func (s *Span) SetStatus(status string) {}
