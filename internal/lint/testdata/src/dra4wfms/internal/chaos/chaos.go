// Package chaos is a fixture stub mirroring the fault-injection
// harness's surface for analyzer tests. It is deliberately NOT an
// ackorder durability package: healing a partition or restarting a
// crashed node promises nothing durable — the durability points stay
// in pool/poolcluster/relay, and drill code that acknowledges around a
// chaos directive is held to the same journal-first ordering as any
// other caller.
package chaos

import "context"

// Network mirrors the seeded fault model.
type Network struct{}

// Isolate mirrors cutting every link to and from node.
func (n *Network) Isolate(node string) {}

// HealNode mirrors lifting a node's isolation.
func (n *Network) HealNode(node string) {}

// Deliver mirrors a context-carrying hop through the fault model (the
// chaos RoundTripper / NodeRef path): it must receive the innermost
// span context like any other downstream call.
func (n *Network) Deliver(ctx context.Context, src, dst string) error { return nil }
