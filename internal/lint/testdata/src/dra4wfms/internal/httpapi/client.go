// Package httpapi is a fixture stub mirroring the real module's HTTP
// client surface for analyzer tests.
package httpapi

// Client mirrors httpapi.Client.
type Client struct{}

// Store performs an HTTP round trip in the real module.
func (c *Client) Store(doc []byte) error { return nil }

// Worklist performs an HTTP round trip in the real module.
func (c *Client) Worklist() ([]string, error) { return nil, nil }
