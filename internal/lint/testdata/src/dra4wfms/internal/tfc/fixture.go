// Package tfc is a fixture inside the nondeterminism analyzer's scope
// (internal/tfc is a verification-path package): wall-clock and math/rand
// reads reachable from Verify* functions are violations.
package tfc

import (
	"math/rand" // want "math/rand imported"
	"time"
)

// VerifyCascade is a seed function for the reachability walk.
func VerifyCascade(sigs [][]byte) error {
	if stamp().IsZero() {
		return nil
	}
	if rand.Intn(2) == 0 { // want "rand.Intn"
		return nil
	}
	return nil
}

func stamp() time.Time {
	return time.Now() // want "time.Now"
}

func verifyTimed(sigs [][]byte) int {
	//lint:ignore nondeterminism fixture demo: latency measurement, not a verification input
	start := time.Now()
	return int(time.Since(start)) // want "time.Since"
}

// formatEpoch is not reachable from any Verify* seed, so its clock read
// is fine.
func formatEpoch() string {
	return time.Now().UTC().Format(time.RFC3339)
}
