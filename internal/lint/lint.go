// Package lint is a stdlib-only static-analysis framework enforcing the
// DRA4WfMS crypto and telemetry invariants that the engine-less
// architecture depends on. There is no central engine to sanity-check a
// running process: all trust rests on the correctness of the crypto code
// handling the routed document (the cascaded signatures and element-wise
// encryption of PAPER.md §2.3). A swallowed Verify error or a
// non-constant-time digest comparison is therefore a protocol break, not a
// style nit — and those invariants are machine-checkable.
//
// The framework is deliberately dependency-free (go/parser + go/types +
// go/importer, matching the zero-dep go.mod): a Loader type-checks the
// module's packages, Analyzers walk the typed syntax trees, and a driver
// collects Diagnostics, honoring //lint:ignore suppression comments.
// cmd/dralint is the CLI; `make lint` and CI run it over ./... and fail on
// findings.
//
// Suppression syntax (one finding, one reason):
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory; an ignore directive without one does not suppress.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"unicode"
)

// An Analyzer is one lint rule: a named pass over a type-checked package.
type Analyzer struct {
	// Name is the rule identifier used in reports and ignore directives.
	Name string
	// Doc is a one-paragraph description of what the rule enforces.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// All returns the default analyzer set, sorted by name.
func All() []*Analyzer {
	return []*Analyzer{
		AckOrder,
		ConstTime,
		CryptoErr,
		CtxProp,
		LockIO,
		NonDeterminism,
		SpanLeak,
	}
}

// ByName resolves a comma-separated rule list against All; unknown names
// are an error.
func ByName(list string) ([]*Analyzer, error) {
	if strings.TrimSpace(list) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	// Rule is the reporting analyzer's name.
	Rule string `json:"rule"`
	// Position locates the finding.
	Position token.Position `json:"position"`
	// Message describes the violation and the fix.
	Message string `json:"message"`
	// SuppressReason is the ignore directive's reason when the finding was
	// suppressed (suppressed findings are reported separately).
	SuppressReason string `json:"suppressReason,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Rule, d.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the running rule.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package
	// Fset maps positions.
	Fset *token.FileSet

	diags []Diagnostic

	// importsByFile caches the local-name → import-path table per file, the
	// syntactic fallback when type information is incomplete.
	importsByFile map[*ast.File]map[string]string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Rule:     p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Callee identifies the static target of a call expression.
type Callee struct {
	// PkgPath is the defining package's import path.
	PkgPath string
	// Recv is the named receiver type for methods, "" for functions.
	Recv string
	// Name is the function or method name.
	Name string
}

// InPkg reports whether the callee's package path equals suffix or ends
// with "/"+suffix — rules match by path suffix so the same analyzer works
// on the real module and on testdata fixture modules.
func (c Callee) InPkg(suffix string) bool {
	return pathHasSuffix(c.PkgPath, suffix)
}

func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// String renders dsig.Verify or (document.Document).VerifyAll.
func (c Callee) String() string {
	base := c.PkgPath
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	if c.Recv != "" {
		return fmt.Sprintf("(%s.%s).%s", base, c.Recv, c.Name)
	}
	if base == "" {
		return c.Name
	}
	return base + "." + c.Name
}

// CalleeOf resolves the static target of a call, preferring type
// information and falling back to the file's import table for package-
// qualified calls. The second result is false when the target cannot be
// determined (dynamic calls through function values, missing types).
func (p *Pass) CalleeOf(file *ast.File, call *ast.CallExpr) (Callee, bool) {
	info := p.Pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if info != nil {
			if fn, ok := info.Uses[fun].(*types.Func); ok {
				return calleeFromFunc(fn), true
			}
			if fn, ok := info.Defs[fun].(*types.Func); ok {
				return calleeFromFunc(fn), true
			}
		}
	case *ast.SelectorExpr:
		if info != nil {
			if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				return calleeFromFunc(fn), true
			}
		}
		// Fallback: a selector on a package name resolved via imports.
		if x, ok := fun.X.(*ast.Ident); ok {
			if path, ok := p.importPathOf(file, x.Name); ok {
				return Callee{PkgPath: path, Name: fun.Sel.Name}, true
			}
		}
	}
	return Callee{}, false
}

func calleeFromFunc(fn *types.Func) Callee {
	c := Callee{Name: fn.Name()}
	if fn.Pkg() != nil {
		c.PkgPath = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			c.Recv = named.Obj().Name()
			// Methods live in the receiver type's package.
			if named.Obj().Pkg() != nil {
				c.PkgPath = named.Obj().Pkg().Path()
			}
		}
	}
	return c
}

// importPathOf resolves a local package name within file to its import
// path, deriving local names from aliases or the path base.
func (p *Pass) importPathOf(file *ast.File, name string) (string, bool) {
	if p.importsByFile == nil {
		p.importsByFile = map[*ast.File]map[string]string{}
	}
	table, ok := p.importsByFile[file]
	if !ok {
		table = map[string]string{}
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			local := path
			if i := strings.LastIndex(local, "/"); i >= 0 {
				local = local[i+1:]
			}
			if imp.Name != nil {
				local = imp.Name.Name
			}
			if local == "_" || local == "." {
				continue
			}
			table[local] = path
		}
		p.importsByFile[file] = table
	}
	path, ok := table[name]
	return path, ok
}

// ErrorResultIndexes returns the result positions of call that have type
// error. When type information is unavailable it returns nil and the
// second result is false; rule-specific heuristics take over.
func (p *Pass) ErrorResultIndexes(call *ast.CallExpr) ([]int, bool) {
	info := p.Pkg.Info
	if info == nil {
		return nil, false
	}
	t := info.TypeOf(call)
	if t == nil {
		return nil, false
	}
	var out []int
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				out = append(out, i)
			}
		}
	default:
		if isErrorType(t) {
			out = append(out, 0)
		}
	}
	return out, true
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// identObj resolves an identifier to its object (definition or use).
func (p *Pass) identObj(id *ast.Ident) types.Object {
	if p.Pkg.Info == nil {
		return nil
	}
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}

// --- identifier word splitting ----------------------------------------------

// splitWords breaks an identifier into lowercase words on camelCase,
// digit, and underscore boundaries: "DigestValue" → [digest value],
// "mac_sum256" → [mac sum 256].
func splitWords(name string) []string {
	var words []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			words = append(words, strings.ToLower(string(cur)))
			cur = nil
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_' || r == '-':
			flush()
		case unicode.IsDigit(r):
			if len(cur) > 0 && !unicode.IsDigit(cur[len(cur)-1]) {
				flush()
			}
			cur = append(cur, r)
		case unicode.IsUpper(r):
			// Boundary at lower→Upper and at the last Upper of an
			// acronym run (HTTPServer → http server).
			if len(cur) > 0 && !unicode.IsUpper(cur[len(cur)-1]) {
				flush()
			} else if i+1 < len(runes) && unicode.IsLower(runes[i+1]) {
				flush()
			}
			cur = append(cur, r)
		default:
			cur = append(cur, r)
		}
	}
	flush()
	return words
}

// --- suppression -------------------------------------------------------------

const ignoreDirective = "//lint:ignore"

// ignoreEntry is one parsed //lint:ignore directive.
type ignoreEntry struct {
	rules  []string
	reason string
}

// ignoreIndex maps file → line → directives applying to that line. A
// directive covers its own line (trailing comment) and the line below it
// (standalone comment above the offending statement).
type ignoreIndex map[string]map[int][]ignoreEntry

func buildIgnoreIndex(fset *token.FileSet, pkgs []*Package) ignoreIndex {
	idx := ignoreIndex{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, ignoreDirective) {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(text, ignoreDirective))
					if len(fields) < 2 {
						// No reason given: the directive is inert by design.
						continue
					}
					entry := ignoreEntry{
						rules:  strings.Split(fields[0], ","),
						reason: strings.Join(fields[1:], " "),
					}
					pos := fset.Position(c.Pos())
					lines := idx[pos.Filename]
					if lines == nil {
						lines = map[int][]ignoreEntry{}
						idx[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], entry)
					lines[pos.Line+1] = append(lines[pos.Line+1], entry)
				}
			}
		}
	}
	return idx
}

// match returns the reason of a directive covering the diagnostic, if any.
func (idx ignoreIndex) match(d Diagnostic) (string, bool) {
	for _, e := range idx[d.Position.Filename][d.Position.Line] {
		for _, r := range e.rules {
			if r == d.Rule || r == "all" {
				return e.reason, true
			}
		}
	}
	return "", false
}

// --- driver ------------------------------------------------------------------

// Result is the outcome of running analyzers over packages.
type Result struct {
	// Diagnostics are active findings, sorted by position then rule.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Suppressed are findings silenced by //lint:ignore directives.
	Suppressed []Diagnostic `json:"suppressed,omitempty"`
}

// Run applies each analyzer to each package and partitions the findings
// into active and suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	res := Result{Diagnostics: []Diagnostic{}}
	if len(pkgs) == 0 {
		return res
	}
	idx := buildIgnoreIndex(pkgs[0].Fset, pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Fset: pkg.Fset}
			a.Run(pass)
			for _, d := range pass.diags {
				if reason, ok := idx.match(d); ok {
					d.SuppressReason = reason
					res.Suppressed = append(res.Suppressed, d)
				} else {
					res.Diagnostics = append(res.Diagnostics, d)
				}
			}
		}
	}
	sortDiags(res.Diagnostics)
	sortDiags(res.Suppressed)
	return res
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Rule < b.Rule
	})
}
