// Package monitor implements workflow monitoring over the document pool:
// per-instance status tracking (which activities ran, when, what is
// enabled) and pool-wide statistics computed with the mapreduce layer —
// the paper's "perform workflow monitoring or statistical analyses"
// portal operation (Section 4.2).
//
// Monitoring needs no decryption: execution structure (CER metadata,
// routing decisions, timestamps) is public document structure; only
// result *values* are element-wise encrypted.
package monitor

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"dra4wfms/internal/document"
	"dra4wfms/internal/mapreduce"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/portal"
)

// Step describes one executed activity of an instance.
type Step struct {
	Activity    string
	Iteration   int
	Participant string
	// Timestamp is the TFC-witnessed finish time; zero under the basic
	// operational model (no notary in the path).
	Timestamp time.Time
	// Next is the signed routing decision.
	Next []string
}

// Status is the monitoring view of one process instance.
type Status struct {
	ProcessID  string
	Definition string
	State      string // "running" | "completed"
	Enabled    []string
	Steps      []Step
	SizeBytes  int
}

// Statistics aggregates the whole pool.
type Statistics struct {
	// InstancesByState counts instances per "running"/"completed".
	InstancesByState map[string]int
	// InstancesByDefinition counts instances per workflow definition.
	InstancesByDefinition map[string]int
	// TotalFinalCERs sums executed activities across instances.
	TotalFinalCERs int
	// MeanDocumentBytes is the average stored document size.
	MeanDocumentBytes int
}

// Monitor reads the portal's documents table.
type Monitor struct {
	// Table is the shared documents table (see package portal for
	// layout), local or clustered.
	Table pool.DocTable
}

// New creates a monitor over the documents table.
func New(table pool.DocTable) *Monitor { return &Monitor{Table: table} }

// InstanceStatus reconstructs the status of one process instance from its
// stored document.
func (m *Monitor) InstanceStatus(processID string) (*Status, error) {
	raw, ok := m.Table.Get(processID, "doc", "content")
	if !ok {
		return nil, fmt.Errorf("%w: %s", portal.ErrUnknownProcess, processID)
	}
	doc, err := document.Parse(raw)
	if err != nil {
		return nil, err
	}
	def, err := doc.Definition()
	if err != nil {
		return nil, err
	}
	enabled, completed, err := document.Enabled(def, doc)
	if err != nil {
		return nil, err
	}
	st := &Status{
		ProcessID:  processID,
		Definition: def.Name,
		State:      "running",
		Enabled:    enabled,
		SizeBytes:  len(raw),
	}
	if completed {
		st.State = "completed"
		st.Enabled = nil
	}
	for _, c := range doc.FinalCERs() {
		step := Step{
			Activity:    c.ActivityID(),
			Iteration:   c.Iteration(),
			Participant: c.Participant(),
			Next:        c.Next(),
		}
		if ts, ok := c.Timestamp(); ok {
			step.Timestamp = ts
		}
		st.Steps = append(st.Steps, step)
	}
	return st, nil
}

// Statistics runs mapreduce jobs over the pool metadata.
func (m *Monitor) Statistics() (*Statistics, error) {
	byState, err := mapreduce.Count(m.Table, pool.ScanOptions{Family: "meta"}, func(kv pool.KeyValue) string {
		if kv.Qualifier != "state" {
			return ""
		}
		return string(kv.Value)
	})
	if err != nil {
		return nil, err
	}
	byDef, err := mapreduce.Count(m.Table, pool.ScanOptions{Family: "meta"}, func(kv pool.KeyValue) string {
		if kv.Qualifier != "definition" {
			return ""
		}
		return string(kv.Value)
	})
	if err != nil {
		return nil, err
	}

	sums := &mapreduce.Job{
		Table: m.Table,
		Scan:  pool.ScanOptions{},
		Map: func(kv pool.KeyValue, emit func(string, string)) {
			switch {
			case kv.Family == "meta" && kv.Qualifier == "cers":
				emit("cers", string(kv.Value))
			case kv.Family == "doc" && kv.Qualifier == "content":
				emit("bytes", strconv.Itoa(len(kv.Value)))
				emit("docs", "1")
			}
		},
		Reduce: func(key string, values []string) string {
			total := 0
			for _, v := range values {
				n, _ := strconv.Atoi(v)
				total += n
			}
			return strconv.Itoa(total)
		},
	}
	sumRes, err := sums.Run()
	if err != nil {
		return nil, err
	}
	totalCERs, _ := strconv.Atoi(sumRes["cers"])
	totalBytes, _ := strconv.Atoi(sumRes["bytes"])
	docs, _ := strconv.Atoi(sumRes["docs"])

	stats := &Statistics{
		InstancesByState:      byState,
		InstancesByDefinition: byDef,
		TotalFinalCERs:        totalCERs,
	}
	if docs > 0 {
		stats.MeanDocumentBytes = totalBytes / docs
	}
	return stats, nil
}

// DurationStats aggregates per-activity latencies across ALL instances of
// one workflow definition — the fleet-wide analytics the paper assigns to
// the MapReduce layer. Only advanced-model instances (whose CERs carry TFC
// timestamps) contribute; others are skipped and counted.
type DurationStats struct {
	// Definition is the workflow definition analyzed.
	Definition string
	// Instances is how many instances contributed.
	Instances int
	// SkippedNoTimestamps counts instances without timestamps.
	SkippedNoTimestamps int
	// PerActivity maps activity ID to its mean latency across instances
	// and iterations.
	PerActivity map[string]time.Duration
}

// DurationStatistics computes mean per-activity latencies across every
// stored instance of the named definition, via a mapreduce job over the
// documents (map: parse document, emit activity→duration pairs; reduce:
// average).
func (m *Monitor) DurationStatistics(definition string) (*DurationStats, error) {
	job := &mapreduce.Job{
		Table: m.Table,
		Scan:  pool.ScanOptions{Family: "doc"},
		Map: func(kv pool.KeyValue, emit func(string, string)) {
			if kv.Qualifier != "content" {
				return
			}
			doc, err := document.Parse(kv.Value)
			if err != nil {
				return
			}
			if doc.DefinitionName() != definition {
				return
			}
			created, err := doc.CreatedAt()
			if err != nil {
				return
			}
			type stamped struct {
				act string
				at  time.Time
			}
			var steps []stamped
			for _, c := range doc.FinalCERs() {
				ts, ok := c.Timestamp()
				if !ok {
					emit("__skipped__", "1")
					return
				}
				steps = append(steps, stamped{act: c.ActivityID(), at: ts})
			}
			sort.Slice(steps, func(i, j int) bool { return steps[i].at.Before(steps[j].at) })
			prev := created
			for _, s := range steps {
				emit(s.act, strconv.FormatInt(int64(s.at.Sub(prev)), 10))
				prev = s.at
			}
			emit("__instances__", "1")
		},
		Reduce: func(key string, values []string) string {
			if key == "__instances__" || key == "__skipped__" {
				return strconv.Itoa(len(values))
			}
			var sum int64
			for _, v := range values {
				n, _ := strconv.ParseInt(v, 10, 64)
				sum += n
			}
			return strconv.FormatInt(sum/int64(len(values)), 10)
		},
	}
	res, err := job.Run()
	if err != nil {
		return nil, err
	}
	stats := &DurationStats{Definition: definition, PerActivity: map[string]time.Duration{}}
	for k, v := range res {
		switch k {
		case "__instances__":
			stats.Instances, _ = strconv.Atoi(v)
		case "__skipped__":
			stats.SkippedNoTimestamps, _ = strconv.Atoi(v)
		default:
			n, _ := strconv.ParseInt(v, 10, 64)
			stats.PerActivity[k] = time.Duration(n)
		}
	}
	return stats, nil
}

// ActivityDurations derives per-activity latencies (finish-to-finish) from
// the timestamps in one instance, usable only under the advanced model.
// The first step's latency is measured from the document creation time.
func (m *Monitor) ActivityDurations(processID string) (map[string]time.Duration, error) {
	raw, ok := m.Table.Get(processID, "doc", "content")
	if !ok {
		return nil, fmt.Errorf("%w: %s", portal.ErrUnknownProcess, processID)
	}
	doc, err := document.Parse(raw)
	if err != nil {
		return nil, err
	}
	created, err := doc.CreatedAt()
	if err != nil {
		return nil, err
	}
	type stamped struct {
		key string
		at  time.Time
	}
	var steps []stamped
	for _, c := range doc.FinalCERs() {
		ts, ok := c.Timestamp()
		if !ok {
			return nil, fmt.Errorf("monitor: CER %s has no timestamp (basic-model instance?)", c.ID())
		}
		steps = append(steps, stamped{key: fmt.Sprintf("%s#%d", c.ActivityID(), c.Iteration()), at: ts})
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i].at.Before(steps[j].at) })
	out := map[string]time.Duration{}
	prev := created
	for _, s := range steps {
		out[s.key] = s.at.Sub(prev)
		prev = s.at
	}
	return out, nil
}
