package monitor

import (
	"testing"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/portal"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/tfc"
	"dra4wfms/internal/wfdef"
)

var base = time.Date(2026, 7, 6, 13, 0, 0, 0, time.UTC)

type world struct {
	env    *testenv.Env
	table  *pool.Table
	portal *portal.Portal
	server *tfc.Server
	agents map[string]*aea.AEA
	mon    *Monitor
}

func newWorld(t *testing.T) *world {
	t.Helper()
	env := testenv.Fig9(0)
	cluster, err := pool.NewCluster([]string{"rs1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	table, err := portal.CreateTable(cluster)
	if err != nil {
		t.Fatal(err)
	}
	agents := map[string]*aea.AEA{}
	for act, p := range wfdef.Fig9Participants {
		agents[act] = aea.New(env.KeyOf(p), env.Registry)
	}
	tick := base
	clock := func() time.Time { tick = tick.Add(time.Minute); return tick }
	return &world{
		env:    env,
		table:  table,
		portal: portal.New("p1", env.Registry, table, func() time.Time { return base }),
		server: tfc.New(env.KeyOf("tfc@cloud"), env.Registry, clock),
		agents: agents,
		mon:    New(table),
	}
}

// runBasic executes the Figure 9A process once (accepting) under the basic
// model, storing every produced document via the portal.
func (w *world) runBasic(t *testing.T) string {
	t.Helper()
	doc, err := document.New(wfdef.Fig9A(), w.env.KeyOf("designer@acme"), testenv.ProcessID(), base)
	if err != nil {
		t.Fatal(err)
	}
	pid := doc.ProcessID()
	if _, err := w.portal.StoreInitial(doc); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		act    string
		inputs aea.Inputs
	}{
		{"A", aea.Inputs{"request": "r"}},
		{"B1", aea.Inputs{"techReview": "ok"}},
		{"B2", aea.Inputs{"budgetReview": "ok"}},
		{"C", aea.Inputs{"summary": "s"}},
		{"D", aea.Inputs{"accept": "true"}},
	}
	for _, s := range steps {
		cur, err := w.portal.Retrieve(wfdef.Fig9Participants[s.act], pid)
		if err != nil {
			t.Fatal(err)
		}
		out, err := w.agents[s.act].Execute(cur, s.act, s.inputs, base)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.portal.Store(out.Doc); err != nil {
			t.Fatal(err)
		}
	}
	return pid
}

// runAdvanced executes Fig9B once (accepting) through the TFC.
func (w *world) runAdvanced(t *testing.T) string {
	t.Helper()
	doc, err := document.New(wfdef.Fig9B(), w.env.KeyOf("designer@acme"), testenv.ProcessID(), base)
	if err != nil {
		t.Fatal(err)
	}
	pid := doc.ProcessID()
	if _, err := w.portal.StoreInitial(doc); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		act    string
		inputs aea.Inputs
	}{
		{"A", aea.Inputs{"request": "r"}},
		{"B1", aea.Inputs{"techReview": "ok"}},
		{"B2", aea.Inputs{"budgetReview": "ok"}},
		{"C", aea.Inputs{"summary": "s"}},
		{"D", aea.Inputs{"accept": "true"}},
	}
	for _, s := range steps {
		cur, err := w.portal.Retrieve(wfdef.Fig9Participants[s.act], pid)
		if err != nil {
			t.Fatal(err)
		}
		interm, err := w.agents[s.act].ExecuteToTFC(cur, s.act, s.inputs)
		if err != nil {
			t.Fatal(err)
		}
		out, err := w.server.Process(interm)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.portal.Store(out.Doc); err != nil {
			t.Fatal(err)
		}
	}
	return pid
}

func TestInstanceStatusBasic(t *testing.T) {
	w := newWorld(t)
	pid := w.runBasic(t)
	st, err := w.mon.InstanceStatus(pid)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "completed" || len(st.Enabled) != 0 {
		t.Fatalf("state = %s enabled = %v", st.State, st.Enabled)
	}
	if len(st.Steps) != 5 {
		t.Fatalf("steps = %d", len(st.Steps))
	}
	if st.Steps[0].Activity != "A" || st.Steps[4].Activity != "D" {
		t.Fatalf("step order: %v", st.Steps)
	}
	if st.Steps[4].Next[0] != wfdef.EndID {
		t.Fatalf("last next = %v", st.Steps[4].Next)
	}
	if !st.Steps[0].Timestamp.IsZero() {
		t.Fatal("basic-model step has a timestamp")
	}
	if st.SizeBytes == 0 || st.Definition != "fig9-review" {
		t.Fatalf("size=%d def=%s", st.SizeBytes, st.Definition)
	}
}

func TestInstanceStatusRunning(t *testing.T) {
	w := newWorld(t)
	doc, _ := document.New(wfdef.Fig9A(), w.env.KeyOf("designer@acme"), testenv.ProcessID(), base)
	w.portal.StoreInitial(doc)
	st, err := w.mon.InstanceStatus(doc.ProcessID())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "running" || len(st.Enabled) != 1 || st.Enabled[0] != "A" {
		t.Fatalf("status = %+v", st)
	}
	if _, err := w.mon.InstanceStatus("ghost"); err == nil {
		t.Fatal("ghost instance found")
	}
}

func TestStatistics(t *testing.T) {
	w := newWorld(t)
	w.runBasic(t)
	w.runBasic(t)
	// One instance left running.
	doc, _ := document.New(wfdef.Fig9A(), w.env.KeyOf("designer@acme"), testenv.ProcessID(), base)
	w.portal.StoreInitial(doc)

	stats, err := w.mon.Statistics()
	if err != nil {
		t.Fatal(err)
	}
	if stats.InstancesByState["completed"] != 2 || stats.InstancesByState["running"] != 1 {
		t.Fatalf("by state = %v", stats.InstancesByState)
	}
	if stats.InstancesByDefinition["fig9-review"] != 3 {
		t.Fatalf("by definition = %v", stats.InstancesByDefinition)
	}
	if stats.TotalFinalCERs != 10 { // 2 completed runs × 5 activities
		t.Fatalf("total CERs = %d", stats.TotalFinalCERs)
	}
	if stats.MeanDocumentBytes == 0 {
		t.Fatal("mean document size = 0")
	}
}

func TestActivityDurationsAdvanced(t *testing.T) {
	w := newWorld(t)
	pid := w.runAdvanced(t)
	durations, err := w.mon.ActivityDurations(pid)
	if err != nil {
		t.Fatal(err)
	}
	if len(durations) != 5 {
		t.Fatalf("durations = %v", durations)
	}
	for k, d := range durations {
		if d <= 0 {
			t.Fatalf("duration %s = %v", k, d)
		}
	}
	if _, ok := durations["A#0"]; !ok {
		t.Fatalf("missing A#0: %v", durations)
	}
}

func TestActivityDurationsRejectsBasicModel(t *testing.T) {
	w := newWorld(t)
	pid := w.runBasic(t)
	if _, err := w.mon.ActivityDurations(pid); err == nil {
		t.Fatal("durations computed without timestamps")
	}
	if _, err := w.mon.ActivityDurations("ghost"); err == nil {
		t.Fatal("ghost instance accepted")
	}
}

func TestDurationStatistics(t *testing.T) {
	w := newWorld(t)
	// Two advanced instances and one basic (skipped).
	w.runAdvanced(t)
	w.runAdvanced(t)
	w.runBasic(t)

	stats, err := w.mon.DurationStatistics("fig9-review")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instances != 2 {
		t.Fatalf("instances = %d, want 2", stats.Instances)
	}
	if stats.SkippedNoTimestamps != 1 {
		t.Fatalf("skipped = %d, want 1", stats.SkippedNoTimestamps)
	}
	if len(stats.PerActivity) != 5 {
		t.Fatalf("activities = %v", stats.PerActivity)
	}
	for act, d := range stats.PerActivity {
		if d <= 0 {
			t.Fatalf("activity %s mean duration %v", act, d)
		}
	}
	// Unknown definition yields an empty report.
	empty, err := w.mon.DurationStatistics("nope")
	if err != nil || empty.Instances != 0 || len(empty.PerActivity) != 0 {
		t.Fatalf("empty stats = %+v, %v", empty, err)
	}
}

// TestDurationStatisticsEmptyPool: the mapreduce job over a table with no
// documents must yield a well-formed empty report, not an error or nil
// maps.
func TestDurationStatisticsEmptyPool(t *testing.T) {
	w := newWorld(t)
	stats, err := w.mon.DurationStatistics("fig9-review")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Definition != "fig9-review" {
		t.Errorf("definition = %q", stats.Definition)
	}
	if stats.Instances != 0 || stats.SkippedNoTimestamps != 0 {
		t.Errorf("instances/skipped = %d/%d, want 0/0", stats.Instances, stats.SkippedNoTimestamps)
	}
	if stats.PerActivity == nil {
		t.Error("PerActivity is nil, want empty map")
	}
	if len(stats.PerActivity) != 0 {
		t.Errorf("PerActivity = %v, want empty", stats.PerActivity)
	}
}

// TestDurationStatisticsNoMatchingInstances: a populated pool whose
// documents all belong to other definitions contributes nothing — and is
// not counted as skipped either (skipped means matched but untimestamped).
func TestDurationStatisticsNoMatchingInstances(t *testing.T) {
	w := newWorld(t)
	w.runBasic(t)
	stats, err := w.mon.DurationStatistics("some-other-definition")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instances != 0 || stats.SkippedNoTimestamps != 0 {
		t.Errorf("instances/skipped = %d/%d, want 0/0", stats.Instances, stats.SkippedNoTimestamps)
	}
	if stats.PerActivity == nil || len(stats.PerActivity) != 0 {
		t.Errorf("PerActivity = %v, want empty non-nil", stats.PerActivity)
	}
}

// TestDurationStatisticsAllBasic: basic-model instances carry no TFC
// timestamps, so a pool of only basic runs reports every instance as
// skipped and aggregates nothing.
func TestDurationStatisticsAllBasic(t *testing.T) {
	w := newWorld(t)
	w.runBasic(t)
	w.runBasic(t)
	stats, err := w.mon.DurationStatistics("fig9-review")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instances != 0 {
		t.Errorf("instances = %d, want 0", stats.Instances)
	}
	if stats.SkippedNoTimestamps != 2 {
		t.Errorf("skipped = %d, want 2", stats.SkippedNoTimestamps)
	}
	if stats.PerActivity == nil || len(stats.PerActivity) != 0 {
		t.Errorf("PerActivity = %v, want empty non-nil", stats.PerActivity)
	}
}
