package pki

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// testBits keeps RSA generation fast in tests; the trust logic under test is
// independent of modulus size.
const testBits = 1024

var cache = NewKeyCache(testBits)

func TestSignVerify(t *testing.T) {
	kp := cache.MustGet("alice")
	msg := []byte("the execution result of activity A1")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(kp.Public(), msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if err := Verify(kp.Public(), append(msg, 'x'), sig); err == nil {
		t.Fatal("tampered message accepted")
	}
	other := cache.MustGet("bob")
	if err := Verify(other.Public(), msg, sig); err == nil {
		t.Fatal("signature accepted under wrong key")
	}
}

func TestSignatureNotMalleableByBitFlip(t *testing.T) {
	kp := cache.MustGet("alice")
	msg := []byte("payload")
	sig, _ := kp.Sign(msg)
	for i := 0; i < len(sig); i += 17 {
		bad := make([]byte, len(sig))
		copy(bad, sig)
		bad[i] ^= 0x01
		if err := Verify(kp.Public(), msg, bad); err == nil {
			t.Fatalf("bit-flipped signature at byte %d accepted", i)
		}
	}
}

func TestPublicKeyEncodeDecode(t *testing.T) {
	kp := cache.MustGet("alice")
	enc, err := EncodePublicKey(kp.Public())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodePublicKey(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.N.Cmp(kp.Public().N) != 0 || dec.E != kp.Public().E {
		t.Fatal("decoded key differs from original")
	}
	if _, err := DecodePublicKey("!!!not base64!!!"); err == nil {
		t.Fatal("garbage input accepted")
	}
	if _, err := DecodePublicKey("aGVsbG8="); err == nil {
		t.Fatal("non-PKIX input accepted")
	}
}

func newTestCA(t *testing.T) *CA {
	t.Helper()
	ca := &CA{Identity: Identity{ID: "ca@root", DisplayName: "Root CA"}, Keys: cache.MustGet("ca@root")}
	return ca
}

func TestCertificateIssueVerify(t *testing.T) {
	ca := newTestCA(t)
	now := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	alice := cache.MustGet("alice")
	cert, err := ca.Issue(Identity{ID: "alice", Org: "acme", Roles: []string{"clerk"}}, alice.Public(), now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.VerifyCertificate(cert, now.Add(30*time.Minute)); err != nil {
		t.Fatalf("valid cert rejected: %v", err)
	}
	if err := ca.VerifyCertificate(cert, now.Add(2*time.Hour)); err == nil {
		t.Fatal("expired cert accepted")
	}
	if err := ca.VerifyCertificate(cert, now.Add(-time.Minute)); err == nil {
		t.Fatal("not-yet-valid cert accepted")
	}

	cert.Subject.Org = "evil-corp"
	if err := ca.VerifyCertificate(cert, now); err == nil {
		t.Fatal("tampered cert accepted")
	}
}

func TestCertificateRolesOrderIndependent(t *testing.T) {
	ca := newTestCA(t)
	now := time.Now()
	alice := cache.MustGet("alice")
	cert, err := ca.Issue(Identity{ID: "alice", Roles: []string{"b", "a"}}, alice.Public(), now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Reordering roles must not invalidate the signature: tbs sorts them.
	cert.Subject.Roles = []string{"a", "b"}
	if err := ca.VerifyCertificate(cert, now); err != nil {
		t.Fatalf("role reordering invalidated cert: %v", err)
	}
}

func TestCertificateSerialMonotonic(t *testing.T) {
	ca := newTestCA(t)
	now := time.Now()
	alice := cache.MustGet("alice")
	c1, _ := ca.Issue(Identity{ID: "a"}, alice.Public(), now, time.Hour)
	c2, _ := ca.Issue(Identity{ID: "b"}, alice.Public(), now, time.Hour)
	if c2.Serial <= c1.Serial {
		t.Fatalf("serials not monotonic: %d then %d", c1.Serial, c2.Serial)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	ca := newTestCA(t)
	reg := NewRegistry(ca)
	now := time.Now()

	alice := cache.MustGet("alice")
	cert, _ := ca.Issue(Identity{ID: "alice", Org: "acme", Roles: []string{"clerk"}}, alice.Public(), now, time.Hour)
	if err := reg.Register(cert, now); err != nil {
		t.Fatal(err)
	}

	pub, err := reg.PublicKey("alice")
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(alice.Public().N) != 0 {
		t.Fatal("registry returned wrong key")
	}
	id, err := reg.Identity("alice")
	if err != nil || id.Org != "acme" || !id.HasRole("clerk") {
		t.Fatalf("Identity = %+v, err %v", id, err)
	}
	if id.HasRole("admin") {
		t.Fatal("HasRole(admin) = true")
	}

	if _, err := reg.PublicKey("mallory"); err == nil {
		t.Fatal("unknown principal resolved")
	}

	reg.Revoke("alice")
	if _, err := reg.PublicKey("alice"); err == nil {
		t.Fatal("revoked principal resolved")
	}
	// Re-registration clears revocation.
	if err := reg.Register(cert, now); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.PublicKey("alice"); err != nil {
		t.Fatalf("re-registered principal not resolved: %v", err)
	}
}

func TestRegistryRejectsUntrustedIssuerAndTamper(t *testing.T) {
	ca := newTestCA(t)
	rogue := &CA{Identity: Identity{ID: "ca@rogue"}, Keys: cache.MustGet("ca@rogue")}
	reg := NewRegistry(ca)
	now := time.Now()

	alice := cache.MustGet("alice")
	badCert, _ := rogue.Issue(Identity{ID: "alice"}, alice.Public(), now, time.Hour)
	if err := reg.Register(badCert, now); err == nil {
		t.Fatal("certificate from untrusted CA registered")
	}

	cert, _ := ca.Issue(Identity{ID: "alice"}, alice.Public(), now, time.Hour)
	cert.Subject.ID = "mallory" // rebind to another subject
	if err := reg.Register(cert, now); err == nil {
		t.Fatal("tampered certificate registered")
	}
}

func TestRegistryPrincipalsSorted(t *testing.T) {
	ca := newTestCA(t)
	reg := NewRegistry(ca)
	now := time.Now()
	for _, id := range []string{"zed", "alice", "mid"} {
		kp := cache.MustGet(id)
		cert, _ := ca.Issue(Identity{ID: id}, kp.Public(), now, time.Hour)
		if err := reg.Register(cert, now); err != nil {
			t.Fatal(err)
		}
	}
	got := reg.Principals()
	want := []string{"alice", "mid", "zed"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Principals = %v, want %v", got, want)
	}
	reg.Revoke("mid")
	if got := reg.Principals(); len(got) != 2 {
		t.Fatalf("Principals after revoke = %v", got)
	}
}

func TestKeyCacheConcurrent(t *testing.T) {
	c := NewKeyCache(testBits)
	var wg sync.WaitGroup
	results := make([]*KeyPair, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.MustGet("shared")
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("KeyCache returned distinct keys for same owner")
		}
	}
	if c.MustGet("other") == results[0] {
		t.Fatal("distinct owners shared a key")
	}
}

func TestZeroValueKeyCacheUsable(t *testing.T) {
	var c KeyCache
	c.Bits = testBits
	if c.MustGet("x") == nil {
		t.Fatal("zero-value KeyCache unusable")
	}
}

// TestPropSignVerifyRandomMessages: any message signs and verifies; any
// single-byte prefix change breaks verification.
func TestPropSignVerifyRandomMessages(t *testing.T) {
	kp := cache.MustGet("alice")
	f := func(msg []byte) bool {
		sig, err := kp.Sign(msg)
		if err != nil {
			return false
		}
		if Verify(kp.Public(), msg, sig) != nil {
			return false
		}
		tampered := append([]byte{0xFF}, msg...)
		return Verify(kp.Public(), tampered, sig) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
