package pki

import "sync"

// KeyCache lazily generates and memoizes key pairs by owner ID. RSA key
// generation is by far the most expensive primitive in the system, so tests
// and benchmarks share a cache instead of regenerating keys per case. The
// cache is safe for concurrent use.
type KeyCache struct {
	// Bits is the RSA modulus size for generated keys; <= 0 selects
	// DefaultKeyBits.
	Bits int

	mu   sync.Mutex
	keys map[string]*KeyPair
}

// NewKeyCache returns a cache producing keys of the given size.
func NewKeyCache(bits int) *KeyCache {
	return &KeyCache{Bits: bits, keys: make(map[string]*KeyPair)}
}

// Get returns the cached key pair for owner, generating it on first use.
func (c *KeyCache) Get(owner string) (*KeyPair, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.keys == nil {
		c.keys = make(map[string]*KeyPair)
	}
	if kp, ok := c.keys[owner]; ok {
		return kp, nil
	}
	kp, err := GenerateKeyPair(owner, c.Bits)
	if err != nil {
		return nil, err
	}
	c.keys[owner] = kp
	return kp, nil
}

// MustGet is Get for test code: it panics on key-generation failure.
func (c *KeyCache) MustGet(owner string) *KeyPair {
	kp, err := c.Get(owner)
	if err != nil {
		panic(err)
	}
	return kp
}
