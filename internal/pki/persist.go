package pki

import (
	"crypto/ed25519"
	"crypto/rsa"
	"crypto/x509"
	"encoding/json"
	"encoding/pem"
	"errors"
	"fmt"
	"time"
)

// This file provides the on-disk forms of the trust fabric, so separate
// processes (portal servers, TFC servers, participant tools) can share one
// deployment: PEM-encoded private keys and a JSON trust bundle holding the
// issuer's public key plus all issued certificates.

// pemType is the PEM block type for private keys.
const pemType = "PRIVATE KEY"

// EncodePrivateKeyPEM serializes a key pair to PKCS#8 PEM: one block for
// the RSA key and, when present, a second for the Ed25519 key. The owner
// ID travels in a PEM header on each block.
func EncodePrivateKeyPEM(kp *KeyPair) ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(kp.Private)
	if err != nil {
		return nil, fmt.Errorf("pki: encoding private key: %w", err)
	}
	block := &pem.Block{
		Type:    pemType,
		Headers: map[string]string{"Owner": kp.Owner},
		Bytes:   der,
	}
	out := pem.EncodeToMemory(block)
	if kp.Ed != nil {
		edDER, err := x509.MarshalPKCS8PrivateKey(kp.Ed)
		if err != nil {
			return nil, fmt.Errorf("pki: encoding ed25519 private key: %w", err)
		}
		out = append(out, pem.EncodeToMemory(&pem.Block{
			Type:    pemType,
			Headers: map[string]string{"Owner": kp.Owner},
			Bytes:   edDER,
		})...)
	}
	return out, nil
}

// DecodePrivateKeyPEM reverses EncodePrivateKeyPEM. Legacy single-block
// RSA files load with a nil Ed25519 half.
func DecodePrivateKeyPEM(data []byte) (*KeyPair, error) {
	kp := &KeyPair{}
	for {
		block, rest := pem.Decode(data)
		if block == nil {
			break
		}
		data = rest
		if block.Type != pemType {
			continue
		}
		key, err := x509.ParsePKCS8PrivateKey(block.Bytes)
		if err != nil {
			return nil, fmt.Errorf("pki: parsing private key: %w", err)
		}
		owner := block.Headers["Owner"]
		if owner == "" {
			return nil, errors.New("pki: private-key PEM lacks an Owner header")
		}
		if kp.Owner == "" {
			kp.Owner = owner
		} else if kp.Owner != owner {
			return nil, fmt.Errorf("pki: private-key PEM mixes owners %q and %q", kp.Owner, owner)
		}
		switch k := key.(type) {
		case *rsa.PrivateKey:
			kp.Private = k
		case ed25519.PrivateKey:
			kp.Ed = k
		default:
			return nil, fmt.Errorf("pki: unsupported private key type %T", key)
		}
	}
	if kp.Private == nil {
		return nil, errors.New("pki: no private-key PEM block")
	}
	return kp, nil
}

// TrustBundle is the portable trust configuration of a deployment: who the
// issuer is and which certificates it has issued. It contains no private
// material.
type TrustBundle struct {
	// IssuerID is the certification authority's principal ID.
	IssuerID string `json:"issuerId"`
	// IssuerPublicKey is the CA's base64 PKIX public key.
	IssuerPublicKey string `json:"issuerPublicKey"`
	// Certificates are all issued participant certificates.
	Certificates []*Certificate `json:"certificates"`
}

// ExportBundle collects the registry's current certificates under the
// given CA into a bundle.
func ExportBundle(ca *CA, reg *Registry) (*TrustBundle, error) {
	pub, err := EncodePublicKey(ca.Keys.Public())
	if err != nil {
		return nil, err
	}
	b := &TrustBundle{IssuerID: ca.Identity.ID, IssuerPublicKey: pub}
	for _, id := range reg.Principals() {
		cert, err := reg.Certificate(id)
		if err != nil {
			return nil, err
		}
		if cert.Issuer == ca.Identity.ID {
			b.Certificates = append(b.Certificates, cert)
		}
	}
	return b, nil
}

// Marshal renders the bundle as indented JSON.
func (b *TrustBundle) Marshal() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// ParseBundle reads a bundle from JSON.
func ParseBundle(data []byte) (*TrustBundle, error) {
	var b TrustBundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("pki: parsing trust bundle: %w", err)
	}
	if b.IssuerID == "" || b.IssuerPublicKey == "" {
		return nil, errors.New("pki: trust bundle lacks an issuer")
	}
	return &b, nil
}

// BuildRegistry verifies every certificate in the bundle against the
// embedded issuer key and returns a populated registry. Certificates that
// fail verification abort the load — a bundle is all-or-nothing.
func (b *TrustBundle) BuildRegistry(at time.Time) (*Registry, error) {
	issuerPub, err := DecodePublicKey(b.IssuerPublicKey)
	if err != nil {
		return nil, err
	}
	reg := NewRegistry()
	reg.AddIssuer(b.IssuerID, issuerPub)
	for _, cert := range b.Certificates {
		if err := reg.Register(cert, at); err != nil {
			return nil, fmt.Errorf("pki: bundle certificate for %q: %w", cert.Subject.ID, err)
		}
	}
	return reg, nil
}
