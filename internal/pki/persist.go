package pki

import (
	"crypto/rsa"
	"crypto/x509"
	"encoding/json"
	"encoding/pem"
	"errors"
	"fmt"
	"time"
)

// This file provides the on-disk forms of the trust fabric, so separate
// processes (portal servers, TFC servers, participant tools) can share one
// deployment: PEM-encoded private keys and a JSON trust bundle holding the
// issuer's public key plus all issued certificates.

// pemType is the PEM block type for private keys.
const pemType = "PRIVATE KEY"

// EncodePrivateKeyPEM serializes a key pair to PKCS#8 PEM. The owner ID
// travels in a PEM header.
func EncodePrivateKeyPEM(kp *KeyPair) ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(kp.Private)
	if err != nil {
		return nil, fmt.Errorf("pki: encoding private key: %w", err)
	}
	block := &pem.Block{
		Type:    pemType,
		Headers: map[string]string{"Owner": kp.Owner},
		Bytes:   der,
	}
	return pem.EncodeToMemory(block), nil
}

// DecodePrivateKeyPEM reverses EncodePrivateKeyPEM.
func DecodePrivateKeyPEM(data []byte) (*KeyPair, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != pemType {
		return nil, errors.New("pki: no private-key PEM block")
	}
	key, err := x509.ParsePKCS8PrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("pki: parsing private key: %w", err)
	}
	rsaKey, ok := key.(*rsa.PrivateKey)
	if !ok {
		return nil, errors.New("pki: not an RSA private key")
	}
	owner := block.Headers["Owner"]
	if owner == "" {
		return nil, errors.New("pki: private-key PEM lacks an Owner header")
	}
	return &KeyPair{Owner: owner, Private: rsaKey}, nil
}

// TrustBundle is the portable trust configuration of a deployment: who the
// issuer is and which certificates it has issued. It contains no private
// material.
type TrustBundle struct {
	// IssuerID is the certification authority's principal ID.
	IssuerID string `json:"issuerId"`
	// IssuerPublicKey is the CA's base64 PKIX public key.
	IssuerPublicKey string `json:"issuerPublicKey"`
	// Certificates are all issued participant certificates.
	Certificates []*Certificate `json:"certificates"`
}

// ExportBundle collects the registry's current certificates under the
// given CA into a bundle.
func ExportBundle(ca *CA, reg *Registry) (*TrustBundle, error) {
	pub, err := EncodePublicKey(ca.Keys.Public())
	if err != nil {
		return nil, err
	}
	b := &TrustBundle{IssuerID: ca.Identity.ID, IssuerPublicKey: pub}
	for _, id := range reg.Principals() {
		cert, err := reg.Certificate(id)
		if err != nil {
			return nil, err
		}
		if cert.Issuer == ca.Identity.ID {
			b.Certificates = append(b.Certificates, cert)
		}
	}
	return b, nil
}

// Marshal renders the bundle as indented JSON.
func (b *TrustBundle) Marshal() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// ParseBundle reads a bundle from JSON.
func ParseBundle(data []byte) (*TrustBundle, error) {
	var b TrustBundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("pki: parsing trust bundle: %w", err)
	}
	if b.IssuerID == "" || b.IssuerPublicKey == "" {
		return nil, errors.New("pki: trust bundle lacks an issuer")
	}
	return &b, nil
}

// BuildRegistry verifies every certificate in the bundle against the
// embedded issuer key and returns a populated registry. Certificates that
// fail verification abort the load — a bundle is all-or-nothing.
func (b *TrustBundle) BuildRegistry(at time.Time) (*Registry, error) {
	issuerPub, err := DecodePublicKey(b.IssuerPublicKey)
	if err != nil {
		return nil, err
	}
	reg := NewRegistry()
	reg.AddIssuer(b.IssuerID, issuerPub)
	for _, cert := range b.Certificates {
		if err := reg.Register(cert, at); err != nil {
			return nil, fmt.Errorf("pki: bundle certificate for %q: %w", cert.Subject.ID, err)
		}
	}
	return reg, nil
}
