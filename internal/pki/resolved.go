package pki

import (
	"crypto"
	"crypto/ed25519"
	"crypto/rsa"
	"crypto/sha256"
	"fmt"
)

// Per-principal crypto-state cache. Resolving a signer on the verify hot
// path used to mean: registry lookup, base64 decode, PKIX parse — per
// signature, per request. A cascade of n CERs re-parses the same handful
// of participant keys n times. ResolvedKey memoizes everything derivable
// from a registered certificate: the parsed public keys, their
// fingerprints (which key the verified-prefix cache entries are bound to),
// and the precomputed RSA-OAEP label used when encrypting to the
// principal. Entries are invalidated on Register/Revoke, so a key rotation
// can never serve stale parsed material.

// ResolvedKey is the memoized, parse-once key material of one principal.
// The struct is immutable after construction and safe to share across
// goroutines.
type ResolvedKey struct {
	// ID is the principal the material belongs to.
	ID string
	// Serial is the certificate serial the material was derived from.
	Serial uint64
	// RSA is the parsed RSA public key.
	RSA *rsa.PublicKey
	// RSAFingerprint identifies (principal, RSA key) for verify caches.
	RSAFingerprint [sha256.Size]byte
	// Ed is the parsed Ed25519 public key; nil for RSA-only certificates.
	Ed ed25519.PublicKey
	// EdFingerprint identifies (principal, Ed25519 key); zero when Ed is nil.
	EdFingerprint [sha256.Size]byte
	// OAEPLabel is the precomputed RSA-OAEP label bytes used when wrapping
	// content keys to this principal (the recipient ID).
	OAEPLabel []byte
}

// Key returns the public key and fingerprint for the given key type
// (KeyRSA or KeyEd25519).
func (rk *ResolvedKey) Key(keyType string) (crypto.PublicKey, [sha256.Size]byte, error) {
	var zero [sha256.Size]byte
	switch keyType {
	case KeyRSA:
		return rk.RSA, rk.RSAFingerprint, nil
	case KeyEd25519:
		if rk.Ed == nil {
			return nil, zero, fmt.Errorf("%w: principal %s has no registered ed25519 key", ErrMalformedKey, rk.ID)
		}
		return rk.Ed, rk.EdFingerprint, nil
	default:
		return nil, zero, fmt.Errorf("%w: unknown key type %q", ErrMalformedKey, keyType)
	}
}

// fingerprint binds a principal ID to one encoded key of one type; the
// separators prevent ambiguity between the three fields.
func fingerprint(keyType, id, encodedKey string) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(keyType))
	h.Write([]byte{0})
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write([]byte(encodedKey))
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// resolveCertificate parses all key material out of cert.
func resolveCertificate(cert *Certificate) (*ResolvedKey, error) {
	id := cert.Subject.ID
	rsaPub, err := cert.RSAPublicKey()
	if err != nil {
		return nil, fmt.Errorf("pki: principal %s: %w", id, err)
	}
	rk := &ResolvedKey{
		ID:             id,
		Serial:         cert.Serial,
		RSA:            rsaPub,
		RSAFingerprint: fingerprint(KeyRSA, id, cert.PublicKey),
		OAEPLabel:      []byte(id),
	}
	if cert.EdPublicKey != "" {
		edPub, err := cert.Ed25519PublicKey()
		if err != nil {
			return nil, fmt.Errorf("pki: principal %s: %w", id, err)
		}
		rk.Ed = edPub
		rk.EdFingerprint = fingerprint(KeyEd25519, id, cert.EdPublicKey)
	}
	return rk, nil
}

// ResolvedKey returns the cached parsed key material for id, building and
// memoizing it on first use. Lookup misses return ErrUnknownPrincipal;
// undecodable key material returns ErrMalformedKey.
func (r *Registry) ResolvedKey(id string) (*ResolvedKey, error) {
	r.mu.RLock()
	rk := r.resolved[id]
	r.mu.RUnlock()
	if rk != nil {
		return rk, nil
	}
	cert, err := r.Certificate(id)
	if err != nil {
		return nil, err
	}
	rk, err = resolveCertificate(cert)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	// Publish only if the certificate on file is still the one we parsed;
	// a concurrent Register/Revoke wins over this stale resolution.
	if cur, ok := r.entries[id]; ok && !r.revoked[id] && cur == cert {
		r.resolved[id] = rk
	}
	r.mu.Unlock()
	return rk, nil
}

// SuiteKey resolves a principal to the public key and fingerprint for the
// requested key type. It is the resolver entry point signature suites use
// (dsig.SuiteKeyResolver).
func (r *Registry) SuiteKey(id, keyType string) (crypto.PublicKey, [sha256.Size]byte, error) {
	rk, err := r.ResolvedKey(id)
	if err != nil {
		return nil, [sha256.Size]byte{}, err
	}
	return rk.Key(keyType)
}
