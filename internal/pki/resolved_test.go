package pki

import (
	"errors"
	"testing"
	"time"
)

// registryWith issues and registers dual-key certificates for the given
// owners against a fresh CA, returning the registry and CA.
func registryWith(t *testing.T, owners ...string) (*Registry, *CA) {
	t.Helper()
	ca, err := NewCA("ca@test", testBits)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(ca)
	now := time.Now()
	for _, o := range owners {
		cert, err := ca.IssueKeys(Identity{ID: o, DisplayName: o}, cache.MustGet(o), now, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(cert, now); err != nil {
			t.Fatal(err)
		}
	}
	return reg, ca
}

func TestResolvedKeyMemoized(t *testing.T) {
	reg, _ := registryWith(t, "alice")
	rk1, err := reg.ResolvedKey("alice")
	if err != nil {
		t.Fatal(err)
	}
	rk2, err := reg.ResolvedKey("alice")
	if err != nil {
		t.Fatal(err)
	}
	if rk1 != rk2 {
		t.Fatal("second resolution did not return the cached ResolvedKey")
	}
	if rk1.RSA == nil || rk1.Ed == nil {
		t.Fatal("resolved material missing a key half")
	}
	if rk1.RSAFingerprint == rk1.EdFingerprint {
		t.Fatal("RSA and Ed25519 fingerprints collide")
	}
	if string(rk1.OAEPLabel) != "alice" {
		t.Fatalf("OAEP label = %q, want principal ID", rk1.OAEPLabel)
	}
}

func TestResolvedKeyInvalidatedOnReRegister(t *testing.T) {
	reg, ca := registryWith(t, "alice")
	rk1, err := reg.ResolvedKey("alice")
	if err != nil {
		t.Fatal(err)
	}
	// Rotate alice's key: re-register with fresh material.
	fresh, err := GenerateKeyPair("alice", testBits)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	cert, err := ca.IssueKeys(Identity{ID: "alice"}, fresh, now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(cert, now); err != nil {
		t.Fatal(err)
	}
	rk2, err := reg.ResolvedKey("alice")
	if err != nil {
		t.Fatal(err)
	}
	if rk1 == rk2 {
		t.Fatal("re-registration did not invalidate the resolved cache")
	}
	if rk2.RSA.N.Cmp(fresh.Public().N) != 0 {
		t.Fatal("resolved key is not the rotated key")
	}
	if rk1.RSAFingerprint == rk2.RSAFingerprint {
		t.Fatal("key rotation did not change the fingerprint")
	}
}

func TestResolvedKeyInvalidatedOnRevoke(t *testing.T) {
	reg, _ := registryWith(t, "alice")
	if _, err := reg.ResolvedKey("alice"); err != nil {
		t.Fatal(err)
	}
	reg.Revoke("alice")
	if _, err := reg.ResolvedKey("alice"); !errors.Is(err, ErrUnknownPrincipal) {
		t.Fatalf("revoked principal resolved: err=%v", err)
	}
}

// TestSuiteKeyClassification is the table-driven classification contract:
// lookups of unregistered principals are ErrUnknownPrincipal, while broken
// or absent key material is ErrMalformedKey. HTTP front ends lean on this
// split to return 4xx instead of 500.
func TestSuiteKeyClassification(t *testing.T) {
	reg, ca := registryWith(t, "alice")

	// An RSA-only certificate (legacy Issue path): no Ed25519 half.
	now := time.Now()
	legacy, err := ca.Issue(Identity{ID: "legacy"}, cache.MustGet("legacy").Public(), now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(legacy, now); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		id      string
		keyType string
		wantErr error
	}{
		{"known principal rsa", "alice", KeyRSA, nil},
		{"known principal ed25519", "alice", KeyEd25519, nil},
		{"unknown principal", "mallory", KeyRSA, ErrUnknownPrincipal},
		{"unknown principal ed", "mallory", KeyEd25519, ErrUnknownPrincipal},
		{"legacy cert lacks ed key", "legacy", KeyEd25519, ErrMalformedKey},
		{"unknown key type", "alice", "dsa", ErrMalformedKey},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pub, fp, err := reg.SuiteKey(tc.id, tc.keyType)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("SuiteKey(%s,%s) = %v", tc.id, tc.keyType, err)
				}
				if pub == nil {
					t.Fatal("nil public key without error")
				}
				var zero [32]byte
				if fp == zero {
					t.Fatal("zero fingerprint without error")
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("SuiteKey(%s,%s) err = %v, want %v", tc.id, tc.keyType, err, tc.wantErr)
			}
		})
	}
}

func TestDecodePublicKeyClassifiesMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not base64", "!!!"},
		{"not PKIX", "aGVsbG8="},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodePublicKey(tc.in); !errors.Is(err, ErrMalformedKey) {
				t.Fatalf("DecodePublicKey(%q) err = %v, want ErrMalformedKey", tc.in, err)
			}
			if _, err := DecodeEdPublicKey(tc.in); !errors.Is(err, ErrMalformedKey) {
				t.Fatalf("DecodeEdPublicKey(%q) err = %v, want ErrMalformedKey", tc.in, err)
			}
		})
	}
}

func TestEdSignVerify(t *testing.T) {
	kp := cache.MustGet("alice")
	msg := []byte("signed-info canonical bytes")
	sig, err := kp.SignEd(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEd(kp.EdPublic(), msg, sig); err != nil {
		t.Fatalf("valid ed25519 signature rejected: %v", err)
	}
	if err := VerifyEd(kp.EdPublic(), append(msg, 'x'), sig); err == nil {
		t.Fatal("tampered message accepted")
	}
	if err := VerifyEd(cache.MustGet("bob").EdPublic(), msg, sig); err == nil {
		t.Fatal("signature accepted under wrong key")
	}
}
