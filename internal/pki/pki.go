// Package pki provides the key and identity infrastructure that DRA4WfMS
// participants rely on: RSA key pairs, lightweight certificates issued by a
// certification authority, and a thread-safe registry mapping participant
// identifiers to verified public keys.
//
// The paper assumes each workflow participant, the workflow designer, and
// every TFC server owns an asymmetric key pair whose public half is known
// (and trusted) by all other parties. This package supplies that trust
// fabric. Certificates here are deliberately simpler than X.509 — a signed
// statement binding a participant ID and organization to a public key with
// a validity window — because the reproduction needs the *trust semantics*,
// not ASN.1.
package pki

import (
	"crypto"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultKeyBits is the RSA modulus size used when none is specified. The
// paper's prototype (Java XML DSig defaults of the era) used RSA keys of
// this size class.
const DefaultKeyBits = 2048

// Key type names used by signature suites and certificate resolution.
const (
	// KeyRSA selects the RSA half of a principal's key material.
	KeyRSA = "rsa"
	// KeyEd25519 selects the Ed25519 half of a principal's key material.
	KeyEd25519 = "ed25519"
)

// KeyPair couples a participant's private keys with its identifier. Every
// principal holds an RSA key (document encryption is RSA-OAEP, and the
// default signature suite is RSA/SHA-256) plus an Ed25519 key so cascades
// can be signed under either registered suite. Ed25519 generation costs
// microseconds next to RSA's seconds, so pairs always carry both.
type KeyPair struct {
	// Owner is the participant identifier this key belongs to.
	Owner string
	// Private is the RSA private key; its Public() half is published.
	Private *rsa.PrivateKey
	// Ed is the Ed25519 private key; nil for key pairs loaded from
	// RSA-only PEM files written before Ed25519 support existed.
	Ed ed25519.PrivateKey
}

// GenerateKeyPair creates a fresh key pair (RSA of the given size plus an
// Ed25519 key) for owner. bits <= 0 selects DefaultKeyBits.
func GenerateKeyPair(owner string, bits int) (*KeyPair, error) {
	if bits <= 0 {
		bits = DefaultKeyBits
	}
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("pki: generating key for %s: %w", owner, err)
	}
	_, ed, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generating ed25519 key for %s: %w", owner, err)
	}
	return &KeyPair{Owner: owner, Private: priv, Ed: ed}, nil
}

// Public returns the public half of the key pair.
func (k *KeyPair) Public() *rsa.PublicKey { return &k.Private.PublicKey }

// EdPublic returns the Ed25519 public key, or nil when the pair carries no
// Ed25519 half (legacy PEM files).
func (k *KeyPair) EdPublic() ed25519.PublicKey {
	if k.Ed == nil {
		return nil
	}
	return k.Ed.Public().(ed25519.PublicKey)
}

// Sign produces an RSASSA-PKCS1-v1_5 signature over the SHA-256 digest of
// msg. It is the primitive beneath the XML signatures in package dsig.
func (k *KeyPair) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := rsa.SignPKCS1v15(rand.Reader, k.Private, crypto.SHA256, digest[:])
	if err != nil {
		return nil, fmt.Errorf("pki: signing as %s: %w", k.Owner, err)
	}
	return sig, nil
}

// SignEd produces an Ed25519 signature over msg. Unlike RSA signing there
// is no separate digest step: Ed25519 hashes internally.
func (k *KeyPair) SignEd(msg []byte) ([]byte, error) {
	if k.Ed == nil {
		return nil, fmt.Errorf("pki: no ed25519 key for %s", k.Owner)
	}
	return ed25519.Sign(k.Ed, msg), nil
}

// Verify checks an RSASSA-PKCS1-v1_5/SHA-256 signature over msg against pub.
func Verify(pub *rsa.PublicKey, msg, sig []byte) error {
	digest := sha256.Sum256(msg)
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest[:], sig); err != nil {
		return fmt.Errorf("pki: signature verification failed: %w", err)
	}
	return nil
}

// VerifyEd checks an Ed25519 signature over msg against pub.
func VerifyEd(pub ed25519.PublicKey, msg, sig []byte) error {
	if !ed25519.Verify(pub, msg, sig) {
		return errors.New("pki: ed25519 signature verification failed")
	}
	return nil
}

// EncodePublicKey serializes an RSA public key to a base64 PKIX form
// suitable for embedding in XML documents and certificates.
func EncodePublicKey(pub *rsa.PublicKey) (string, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return "", fmt.Errorf("pki: encoding public key: %w", err)
	}
	return base64.StdEncoding.EncodeToString(der), nil
}

// ErrMalformedKey is returned when registered key material cannot be
// decoded or has the wrong type. Callers use it to distinguish a client
// addressing an unknown principal (ErrUnknownPrincipal) from corrupt or
// mismatched key material in the trust fabric — both are request-level
// failures, not server faults.
var ErrMalformedKey = errors.New("pki: malformed public key")

// DecodePublicKey reverses EncodePublicKey. Decoding failures wrap
// ErrMalformedKey.
func DecodePublicKey(s string) (*rsa.PublicKey, error) {
	der, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("%w: decoding: %v", ErrMalformedKey, err)
	}
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("%w: parsing: %v", ErrMalformedKey, err)
	}
	pub, ok := k.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("%w: not an RSA public key", ErrMalformedKey)
	}
	return pub, nil
}

// EncodeEdPublicKey serializes an Ed25519 public key to base64 PKIX form.
func EncodeEdPublicKey(pub ed25519.PublicKey) (string, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return "", fmt.Errorf("pki: encoding ed25519 public key: %w", err)
	}
	return base64.StdEncoding.EncodeToString(der), nil
}

// DecodeEdPublicKey reverses EncodeEdPublicKey. Decoding failures wrap
// ErrMalformedKey.
func DecodeEdPublicKey(s string) (ed25519.PublicKey, error) {
	der, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("%w: decoding: %v", ErrMalformedKey, err)
	}
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("%w: parsing: %v", ErrMalformedKey, err)
	}
	pub, ok := k.(ed25519.PublicKey)
	if !ok {
		return nil, fmt.Errorf("%w: not an ed25519 public key", ErrMalformedKey)
	}
	return pub, nil
}

// Identity describes one principal in the system: a human participant, the
// workflow designer, a TFC server, or a portal.
type Identity struct {
	// ID is the unique participant identifier used throughout documents
	// (e.g. "peter@acme"). Signatures and encryption recipients name IDs.
	ID string
	// DisplayName is a human-readable name for UIs and logs.
	DisplayName string
	// Org is the enterprise or organization the principal belongs to;
	// cross-enterprise workflows span several orgs.
	Org string
	// Roles lists workflow roles the principal may fill (e.g. "manager").
	Roles []string
}

// HasRole reports whether the identity carries the given role.
func (id *Identity) HasRole(role string) bool {
	for _, r := range id.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// Certificate binds an identity to a public key for a validity window,
// signed by a CA. The To-Be-Signed portion is the deterministic JSON of
// tbsCertificate.
type Certificate struct {
	Subject   Identity
	PublicKey string // base64 PKIX (RSA)
	// EdPublicKey is the subject's base64 PKIX Ed25519 key, empty for
	// RSA-only certificates issued before Ed25519 support. omitempty keeps
	// the signed JSON of legacy certificates byte-identical, so bundles
	// written by older deployments still verify.
	EdPublicKey string `json:",omitempty"`
	Issuer      string // CA identifier
	NotBefore   time.Time
	NotAfter    time.Time
	Serial      uint64
	Signature   []byte
}

type tbsCertificate struct {
	Subject     Identity
	PublicKey   string
	EdPublicKey string `json:",omitempty"`
	Issuer      string
	NotBefore   time.Time
	NotAfter    time.Time
	Serial      uint64
}

func (c *Certificate) tbsBytes() ([]byte, error) {
	tbs := tbsCertificate{
		Subject:     c.Subject,
		PublicKey:   c.PublicKey,
		EdPublicKey: c.EdPublicKey,
		Issuer:      c.Issuer,
		NotBefore:   c.NotBefore.UTC(),
		NotAfter:    c.NotAfter.UTC(),
		Serial:      c.Serial,
	}
	// Roles order must not affect the signature.
	sort.Strings(tbs.Subject.Roles)
	b, err := json.Marshal(tbs)
	if err != nil {
		return nil, fmt.Errorf("pki: marshaling certificate: %w", err)
	}
	return b, nil
}

// RSAPublicKey decodes the certificate's embedded public key.
func (c *Certificate) RSAPublicKey() (*rsa.PublicKey, error) {
	return DecodePublicKey(c.PublicKey)
}

// Ed25519PublicKey decodes the certificate's embedded Ed25519 key, or nil
// when the certificate is RSA-only.
func (c *Certificate) Ed25519PublicKey() (ed25519.PublicKey, error) {
	if c.EdPublicKey == "" {
		return nil, nil
	}
	return DecodeEdPublicKey(c.EdPublicKey)
}

// ValidAt reports whether t falls inside the certificate validity window.
func (c *Certificate) ValidAt(t time.Time) bool {
	return !t.Before(c.NotBefore) && !t.After(c.NotAfter)
}

// CA is a certification authority: an identity plus key pair that can issue
// and verify participant certificates. A single CA models the trust anchor
// shared by the enterprises in a cross-enterprise workflow; the registry
// supports multiple CAs if enterprises bring their own.
type CA struct {
	Identity Identity
	Keys     *KeyPair

	mu     sync.Mutex
	serial uint64
}

// NewCA creates a certification authority with a fresh key pair.
func NewCA(id string, bits int) (*CA, error) {
	kp, err := GenerateKeyPair(id, bits)
	if err != nil {
		return nil, err
	}
	return &CA{Identity: Identity{ID: id, DisplayName: id}, Keys: kp}, nil
}

// Issue signs an RSA-only certificate for subject's public key valid for
// the given duration starting at now.
func (ca *CA) Issue(subject Identity, pub *rsa.PublicKey, now time.Time, validity time.Duration) (*Certificate, error) {
	return ca.issue(subject, pub, nil, now, validity)
}

// IssueKeys signs a certificate covering all public halves of kp — RSA
// always, Ed25519 when the pair carries one — so the subject can sign
// under any registered signature suite.
func (ca *CA) IssueKeys(subject Identity, kp *KeyPair, now time.Time, validity time.Duration) (*Certificate, error) {
	return ca.issue(subject, kp.Public(), kp.EdPublic(), now, validity)
}

func (ca *CA) issue(subject Identity, pub *rsa.PublicKey, edPub ed25519.PublicKey, now time.Time, validity time.Duration) (*Certificate, error) {
	enc, err := EncodePublicKey(pub)
	if err != nil {
		return nil, err
	}
	var edEnc string
	if edPub != nil {
		if edEnc, err = EncodeEdPublicKey(edPub); err != nil {
			return nil, err
		}
	}
	ca.mu.Lock()
	ca.serial++
	serial := ca.serial
	ca.mu.Unlock()
	cert := &Certificate{
		Subject:     subject,
		PublicKey:   enc,
		EdPublicKey: edEnc,
		Issuer:      ca.Identity.ID,
		NotBefore:   now,
		NotAfter:    now.Add(validity),
		Serial:      serial,
	}
	tbs, err := cert.tbsBytes()
	if err != nil {
		return nil, err
	}
	sig, err := ca.Keys.Sign(tbs)
	if err != nil {
		return nil, err
	}
	cert.Signature = sig
	return cert, nil
}

// VerifyCertificate checks that cert was signed by this CA and is valid at
// the given instant.
func (ca *CA) VerifyCertificate(cert *Certificate, at time.Time) error {
	if cert.Issuer != ca.Identity.ID {
		return fmt.Errorf("pki: certificate issuer %q is not %q", cert.Issuer, ca.Identity.ID)
	}
	return verifyCertificateWith(ca.Keys.Public(), cert, at)
}

// verifyCertificateWith checks validity and signature under an issuer's
// public key (used both by live CAs and by trust-bundle loading).
func verifyCertificateWith(issuerPub *rsa.PublicKey, cert *Certificate, at time.Time) error {
	if !cert.ValidAt(at) {
		return fmt.Errorf("pki: certificate for %q not valid at %v", cert.Subject.ID, at)
	}
	tbs, err := cert.tbsBytes()
	if err != nil {
		return err
	}
	if err := Verify(issuerPub, tbs, cert.Signature); err != nil {
		return fmt.Errorf("pki: certificate for %q: %w", cert.Subject.ID, err)
	}
	return nil
}

// Registry is the thread-safe directory of trusted principals. AEAs, TFC
// servers and portals consult it to resolve a participant ID to a verified
// public key before checking signatures or encrypting to a recipient.
type Registry struct {
	mu      sync.RWMutex
	cas     map[string]*CA
	issuers map[string]*rsa.PublicKey
	entries map[string]*Certificate
	revoked map[string]bool
	// resolved caches parsed key material per principal (see resolved.go);
	// entries are dropped whenever the underlying certificate changes.
	resolved map[string]*ResolvedKey
}

// NewRegistry creates an empty registry trusting the given CAs.
func NewRegistry(cas ...*CA) *Registry {
	r := &Registry{
		cas:      make(map[string]*CA),
		issuers:  make(map[string]*rsa.PublicKey),
		entries:  make(map[string]*Certificate),
		revoked:  make(map[string]bool),
		resolved: make(map[string]*ResolvedKey),
	}
	for _, ca := range cas {
		r.cas[ca.Identity.ID] = ca
	}
	return r
}

// AddCA registers an additional trusted certification authority.
func (r *Registry) AddCA(ca *CA) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cas[ca.Identity.ID] = ca
}

// AddIssuer trusts an issuer known only by its public key — the form a
// trust bundle carries across processes (no private CA material leaves the
// issuing machine).
func (r *Registry) AddIssuer(id string, pub *rsa.PublicKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.issuers[id] = pub
}

// ErrUnknownPrincipal is returned when a lookup names an unregistered or
// revoked participant.
var ErrUnknownPrincipal = errors.New("pki: unknown or revoked principal")

// Register verifies cert against its issuing CA and, on success, records it
// under the subject's ID. Registration replaces any previous certificate
// for the same subject.
func (r *Registry) Register(cert *Certificate, at time.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ca, ok := r.cas[cert.Issuer]; ok {
		if err := ca.VerifyCertificate(cert, at); err != nil {
			return err
		}
	} else if pub, ok := r.issuers[cert.Issuer]; ok {
		if err := verifyCertificateWith(pub, cert, at); err != nil {
			return err
		}
	} else {
		return fmt.Errorf("pki: untrusted issuer %q", cert.Issuer)
	}
	r.entries[cert.Subject.ID] = cert
	delete(r.revoked, cert.Subject.ID)
	// Re-registration replaces key material: drop any resolved-key cache
	// entry so stale parsed keys cannot outlive the certificate swap.
	delete(r.resolved, cert.Subject.ID)
	return nil
}

// Revoke marks the principal's certificate as revoked; subsequent lookups
// fail with ErrUnknownPrincipal until a new certificate is registered.
func (r *Registry) Revoke(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.revoked[id] = true
	delete(r.resolved, id)
}

// Certificate returns the registered certificate for id.
func (r *Registry) Certificate(id string) (*Certificate, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.revoked[id] {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPrincipal, id)
	}
	cert, ok := r.entries[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPrincipal, id)
	}
	return cert, nil
}

// PublicKey resolves a participant ID to its verified RSA public key. The
// parsed key comes from the per-principal resolved cache, so repeated
// resolution on the verify hot path costs a map lookup, not a PKIX parse.
func (r *Registry) PublicKey(id string) (*rsa.PublicKey, error) {
	rk, err := r.ResolvedKey(id)
	if err != nil {
		return nil, err
	}
	return rk.RSA, nil
}

// Identity returns the registered identity metadata for id.
func (r *Registry) Identity(id string) (*Identity, error) {
	cert, err := r.Certificate(id)
	if err != nil {
		return nil, err
	}
	sub := cert.Subject
	return &sub, nil
}

// Principals returns the IDs of all registered, unrevoked principals in
// lexicographic order.
func (r *Registry) Principals() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.entries))
	for id := range r.entries {
		if !r.revoked[id] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}
