// Package pki provides the key and identity infrastructure that DRA4WfMS
// participants rely on: RSA key pairs, lightweight certificates issued by a
// certification authority, and a thread-safe registry mapping participant
// identifiers to verified public keys.
//
// The paper assumes each workflow participant, the workflow designer, and
// every TFC server owns an asymmetric key pair whose public half is known
// (and trusted) by all other parties. This package supplies that trust
// fabric. Certificates here are deliberately simpler than X.509 — a signed
// statement binding a participant ID and organization to a public key with
// a validity window — because the reproduction needs the *trust semantics*,
// not ASN.1.
package pki

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultKeyBits is the RSA modulus size used when none is specified. The
// paper's prototype (Java XML DSig defaults of the era) used RSA keys of
// this size class.
const DefaultKeyBits = 2048

// KeyPair couples a participant's RSA private key with its identifier.
type KeyPair struct {
	// Owner is the participant identifier this key belongs to.
	Owner string
	// Private is the RSA private key; its Public() half is published.
	Private *rsa.PrivateKey
}

// GenerateKeyPair creates a fresh RSA key pair of the given size for owner.
// bits <= 0 selects DefaultKeyBits.
func GenerateKeyPair(owner string, bits int) (*KeyPair, error) {
	if bits <= 0 {
		bits = DefaultKeyBits
	}
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("pki: generating key for %s: %w", owner, err)
	}
	return &KeyPair{Owner: owner, Private: priv}, nil
}

// Public returns the public half of the key pair.
func (k *KeyPair) Public() *rsa.PublicKey { return &k.Private.PublicKey }

// Sign produces an RSASSA-PKCS1-v1_5 signature over the SHA-256 digest of
// msg. It is the primitive beneath the XML signatures in package dsig.
func (k *KeyPair) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := rsa.SignPKCS1v15(rand.Reader, k.Private, crypto.SHA256, digest[:])
	if err != nil {
		return nil, fmt.Errorf("pki: signing as %s: %w", k.Owner, err)
	}
	return sig, nil
}

// Verify checks an RSASSA-PKCS1-v1_5/SHA-256 signature over msg against pub.
func Verify(pub *rsa.PublicKey, msg, sig []byte) error {
	digest := sha256.Sum256(msg)
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest[:], sig); err != nil {
		return fmt.Errorf("pki: signature verification failed: %w", err)
	}
	return nil
}

// EncodePublicKey serializes an RSA public key to a base64 PKIX form
// suitable for embedding in XML documents and certificates.
func EncodePublicKey(pub *rsa.PublicKey) (string, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return "", fmt.Errorf("pki: encoding public key: %w", err)
	}
	return base64.StdEncoding.EncodeToString(der), nil
}

// DecodePublicKey reverses EncodePublicKey.
func DecodePublicKey(s string) (*rsa.PublicKey, error) {
	der, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("pki: decoding public key: %w", err)
	}
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("pki: parsing public key: %w", err)
	}
	pub, ok := k.(*rsa.PublicKey)
	if !ok {
		return nil, errors.New("pki: not an RSA public key")
	}
	return pub, nil
}

// Identity describes one principal in the system: a human participant, the
// workflow designer, a TFC server, or a portal.
type Identity struct {
	// ID is the unique participant identifier used throughout documents
	// (e.g. "peter@acme"). Signatures and encryption recipients name IDs.
	ID string
	// DisplayName is a human-readable name for UIs and logs.
	DisplayName string
	// Org is the enterprise or organization the principal belongs to;
	// cross-enterprise workflows span several orgs.
	Org string
	// Roles lists workflow roles the principal may fill (e.g. "manager").
	Roles []string
}

// HasRole reports whether the identity carries the given role.
func (id *Identity) HasRole(role string) bool {
	for _, r := range id.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// Certificate binds an identity to a public key for a validity window,
// signed by a CA. The To-Be-Signed portion is the deterministic JSON of
// tbsCertificate.
type Certificate struct {
	Subject   Identity
	PublicKey string // base64 PKIX
	Issuer    string // CA identifier
	NotBefore time.Time
	NotAfter  time.Time
	Serial    uint64
	Signature []byte
}

type tbsCertificate struct {
	Subject   Identity
	PublicKey string
	Issuer    string
	NotBefore time.Time
	NotAfter  time.Time
	Serial    uint64
}

func (c *Certificate) tbsBytes() ([]byte, error) {
	tbs := tbsCertificate{
		Subject:   c.Subject,
		PublicKey: c.PublicKey,
		Issuer:    c.Issuer,
		NotBefore: c.NotBefore.UTC(),
		NotAfter:  c.NotAfter.UTC(),
		Serial:    c.Serial,
	}
	// Roles order must not affect the signature.
	sort.Strings(tbs.Subject.Roles)
	b, err := json.Marshal(tbs)
	if err != nil {
		return nil, fmt.Errorf("pki: marshaling certificate: %w", err)
	}
	return b, nil
}

// RSAPublicKey decodes the certificate's embedded public key.
func (c *Certificate) RSAPublicKey() (*rsa.PublicKey, error) {
	return DecodePublicKey(c.PublicKey)
}

// ValidAt reports whether t falls inside the certificate validity window.
func (c *Certificate) ValidAt(t time.Time) bool {
	return !t.Before(c.NotBefore) && !t.After(c.NotAfter)
}

// CA is a certification authority: an identity plus key pair that can issue
// and verify participant certificates. A single CA models the trust anchor
// shared by the enterprises in a cross-enterprise workflow; the registry
// supports multiple CAs if enterprises bring their own.
type CA struct {
	Identity Identity
	Keys     *KeyPair

	mu     sync.Mutex
	serial uint64
}

// NewCA creates a certification authority with a fresh key pair.
func NewCA(id string, bits int) (*CA, error) {
	kp, err := GenerateKeyPair(id, bits)
	if err != nil {
		return nil, err
	}
	return &CA{Identity: Identity{ID: id, DisplayName: id}, Keys: kp}, nil
}

// Issue signs a certificate for subject's public key valid for the given
// duration starting at now.
func (ca *CA) Issue(subject Identity, pub *rsa.PublicKey, now time.Time, validity time.Duration) (*Certificate, error) {
	enc, err := EncodePublicKey(pub)
	if err != nil {
		return nil, err
	}
	ca.mu.Lock()
	ca.serial++
	serial := ca.serial
	ca.mu.Unlock()
	cert := &Certificate{
		Subject:   subject,
		PublicKey: enc,
		Issuer:    ca.Identity.ID,
		NotBefore: now,
		NotAfter:  now.Add(validity),
		Serial:    serial,
	}
	tbs, err := cert.tbsBytes()
	if err != nil {
		return nil, err
	}
	sig, err := ca.Keys.Sign(tbs)
	if err != nil {
		return nil, err
	}
	cert.Signature = sig
	return cert, nil
}

// VerifyCertificate checks that cert was signed by this CA and is valid at
// the given instant.
func (ca *CA) VerifyCertificate(cert *Certificate, at time.Time) error {
	if cert.Issuer != ca.Identity.ID {
		return fmt.Errorf("pki: certificate issuer %q is not %q", cert.Issuer, ca.Identity.ID)
	}
	return verifyCertificateWith(ca.Keys.Public(), cert, at)
}

// verifyCertificateWith checks validity and signature under an issuer's
// public key (used both by live CAs and by trust-bundle loading).
func verifyCertificateWith(issuerPub *rsa.PublicKey, cert *Certificate, at time.Time) error {
	if !cert.ValidAt(at) {
		return fmt.Errorf("pki: certificate for %q not valid at %v", cert.Subject.ID, at)
	}
	tbs, err := cert.tbsBytes()
	if err != nil {
		return err
	}
	if err := Verify(issuerPub, tbs, cert.Signature); err != nil {
		return fmt.Errorf("pki: certificate for %q: %w", cert.Subject.ID, err)
	}
	return nil
}

// Registry is the thread-safe directory of trusted principals. AEAs, TFC
// servers and portals consult it to resolve a participant ID to a verified
// public key before checking signatures or encrypting to a recipient.
type Registry struct {
	mu      sync.RWMutex
	cas     map[string]*CA
	issuers map[string]*rsa.PublicKey
	entries map[string]*Certificate
	revoked map[string]bool
}

// NewRegistry creates an empty registry trusting the given CAs.
func NewRegistry(cas ...*CA) *Registry {
	r := &Registry{
		cas:     make(map[string]*CA),
		issuers: make(map[string]*rsa.PublicKey),
		entries: make(map[string]*Certificate),
		revoked: make(map[string]bool),
	}
	for _, ca := range cas {
		r.cas[ca.Identity.ID] = ca
	}
	return r
}

// AddCA registers an additional trusted certification authority.
func (r *Registry) AddCA(ca *CA) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cas[ca.Identity.ID] = ca
}

// AddIssuer trusts an issuer known only by its public key — the form a
// trust bundle carries across processes (no private CA material leaves the
// issuing machine).
func (r *Registry) AddIssuer(id string, pub *rsa.PublicKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.issuers[id] = pub
}

// ErrUnknownPrincipal is returned when a lookup names an unregistered or
// revoked participant.
var ErrUnknownPrincipal = errors.New("pki: unknown or revoked principal")

// Register verifies cert against its issuing CA and, on success, records it
// under the subject's ID. Registration replaces any previous certificate
// for the same subject.
func (r *Registry) Register(cert *Certificate, at time.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ca, ok := r.cas[cert.Issuer]; ok {
		if err := ca.VerifyCertificate(cert, at); err != nil {
			return err
		}
	} else if pub, ok := r.issuers[cert.Issuer]; ok {
		if err := verifyCertificateWith(pub, cert, at); err != nil {
			return err
		}
	} else {
		return fmt.Errorf("pki: untrusted issuer %q", cert.Issuer)
	}
	r.entries[cert.Subject.ID] = cert
	delete(r.revoked, cert.Subject.ID)
	return nil
}

// Revoke marks the principal's certificate as revoked; subsequent lookups
// fail with ErrUnknownPrincipal until a new certificate is registered.
func (r *Registry) Revoke(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.revoked[id] = true
}

// Certificate returns the registered certificate for id.
func (r *Registry) Certificate(id string) (*Certificate, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.revoked[id] {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPrincipal, id)
	}
	cert, ok := r.entries[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPrincipal, id)
	}
	return cert, nil
}

// PublicKey resolves a participant ID to its verified RSA public key.
func (r *Registry) PublicKey(id string) (*rsa.PublicKey, error) {
	cert, err := r.Certificate(id)
	if err != nil {
		return nil, err
	}
	return cert.RSAPublicKey()
}

// Identity returns the registered identity metadata for id.
func (r *Registry) Identity(id string) (*Identity, error) {
	cert, err := r.Certificate(id)
	if err != nil {
		return nil, err
	}
	sub := cert.Subject
	return &sub, nil
}

// Principals returns the IDs of all registered, unrevoked principals in
// lexicographic order.
func (r *Registry) Principals() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.entries))
	for id := range r.entries {
		if !r.revoked[id] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}
