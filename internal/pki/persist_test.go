package pki

import (
	"strings"
	"testing"
	"time"
)

func TestPrivateKeyPEMRoundTrip(t *testing.T) {
	kp := cache.MustGet("alice")
	pemBytes, err := EncodePrivateKeyPEM(kp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(pemBytes), "PRIVATE KEY") || !strings.Contains(string(pemBytes), "Owner: alice") {
		t.Fatalf("pem = %s", pemBytes)
	}
	back, err := DecodePrivateKeyPEM(pemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if back.Owner != "alice" || back.Private.N.Cmp(kp.Private.N) != 0 {
		t.Fatal("round trip changed the key")
	}
	// Signatures made with the decoded key verify under the original pub.
	sig, err := back.Sign([]byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(kp.Public(), []byte("msg"), sig); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePrivateKeyPEMErrors(t *testing.T) {
	if _, err := DecodePrivateKeyPEM([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
	kp := cache.MustGet("alice")
	pemBytes, _ := EncodePrivateKeyPEM(kp)
	// Strip the Owner header.
	broken := strings.Replace(string(pemBytes), "Owner: alice\n", "", 1)
	if _, err := DecodePrivateKeyPEM([]byte(broken)); err == nil {
		t.Fatal("owner-less PEM accepted")
	}
}

func TestTrustBundleRoundTrip(t *testing.T) {
	ca := newTestCA(t)
	reg := NewRegistry(ca)
	now := time.Now()
	for _, id := range []string{"alice", "bob", "tfc@cloud"} {
		kp := cache.MustGet(id)
		cert, err := ca.Issue(Identity{ID: id, Org: "acme"}, kp.Public(), now, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(cert, now); err != nil {
			t.Fatal(err)
		}
	}

	bundle, err := ExportBundle(ca, reg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := bundle.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	parsed, err := ParseBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.IssuerID != "ca@root" || len(parsed.Certificates) != 3 {
		t.Fatalf("bundle = %+v", parsed)
	}
	// A fresh process builds a working registry from the bundle alone —
	// without the CA's private key.
	loaded, err := parsed.BuildRegistry(now)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := loaded.PublicKey("alice")
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(cache.MustGet("alice").Public().N) != 0 {
		t.Fatal("loaded registry has wrong key")
	}
	// The loaded registry can even register further certificates issued by
	// the same CA (public-key-only issuer trust).
	carol := cache.MustGet("carol")
	cert, _ := ca.Issue(Identity{ID: "carol"}, carol.Public(), now, time.Hour)
	if err := loaded.Register(cert, now); err != nil {
		t.Fatal(err)
	}
}

func TestTrustBundleTamperRejected(t *testing.T) {
	ca := newTestCA(t)
	reg := NewRegistry(ca)
	now := time.Now()
	alice := cache.MustGet("alice")
	cert, _ := ca.Issue(Identity{ID: "alice"}, alice.Public(), now, time.Hour)
	reg.Register(cert, now)
	bundle, _ := ExportBundle(ca, reg)

	// Swap in an attacker-controlled subject.
	bundle.Certificates[0].Subject.ID = "mallory"
	if _, err := bundle.BuildRegistry(now); err == nil {
		t.Fatal("tampered bundle loaded")
	}
}

func TestParseBundleErrors(t *testing.T) {
	if _, err := ParseBundle([]byte("{")); err == nil {
		t.Fatal("bad json accepted")
	}
	if _, err := ParseBundle([]byte("{}")); err == nil {
		t.Fatal("issuer-less bundle accepted")
	}
	b := &TrustBundle{IssuerID: "x", IssuerPublicKey: "!!!"}
	if _, err := b.BuildRegistry(time.Now()); err == nil {
		t.Fatal("bad issuer key accepted")
	}
}
