package aea

import (
	"strings"
	"testing"

	"dra4wfms/internal/document"
)

// flipCipherByte flips one byte inside the first encrypted execution
// result — a mid-cascade tamper on a subtree covered by an earlier CER's
// signature.
func flipCipherByte(t *testing.T, doc *document.Document) {
	t.Helper()
	cv := doc.Root.Find("CipherValue")
	if cv == nil {
		t.Fatal("document has no CipherValue to tamper with")
	}
	b := []byte(cv.TextContent())
	if b[0] == 'A' {
		b[0] = 'B'
	} else {
		b[0] = 'A'
	}
	cv.SetText(string(b))
}

// TestAEARejectsTamperAfterWarmCache is the adversarial check for the
// verification fast path: the AEA verifies a document (warming the
// process-wide verified-prefix cache and the canonical-bytes memos), an
// attacker then flips a byte mid-cascade, and the next agent must still
// reject the document — a cache hit only ever skips the RSA operation,
// never the reference digests.
func TestAEARejectsTamperAfterWarmCache(t *testing.T) {
	f := newFixture(t)
	outA, err := f.agents["A"].Execute(f.doc, "A", Inputs{"request": "buy 10 servers", "attachment": "specs.pdf"}, now)
	if err != nil {
		t.Fatal(err)
	}
	doc := outA.Routed["B1"]
	// Warm: the same signatures verify cleanly first.
	if _, err := doc.VerifyAll(f.env.Registry); err != nil {
		t.Fatalf("pristine document rejected: %v", err)
	}
	tampered := doc.Clone()
	flipCipherByte(t, tampered)
	if _, err := f.agents["B1"].Execute(tampered, "B1", Inputs{"techReview": "sound"}, now); err == nil {
		t.Fatal("AEA accepted a document tampered after the cache was warmed")
	} else if !strings.Contains(err.Error(), "verification failed") {
		t.Fatalf("unexpected rejection cause: %v", err)
	}
	// The pristine document must still pass (no cache pollution from the
	// failed attempt).
	if _, err := doc.VerifyAll(f.env.Registry); err != nil {
		t.Fatalf("pristine document rejected after tamper attempt: %v", err)
	}
}
