// Package aea implements the Activity Execution Agent: the software agent
// running on a participant's own machine that executes workflow activities
// in the engine-less DRA4WfMS architecture (Section 2.1 of the paper).
//
// Receiving a DRA4WfMS document, the AEA:
//
//  1. parses the document and verifies every embedded digital signature —
//     the workflow definition is legal and no stored execution result was
//     altered (the paper's α phase);
//  2. checks that its principal is the assigned executor of the activity
//     and that the activity is actually enabled by the control-flow state;
//  3. decrypts the elements its principal may read and presents the
//     activity's requests to the participant;
//  4. appends the participant's element-wise encrypted execution result;
//  5. embeds a digital signature covering the result and the signatures of
//     all predecessor activities (the β phase, the nonrepudiation cascade);
//  6. forwards the document to the next participant(s) per the control
//     flow — or, under the advanced operational model, encrypts the raw
//     result to the TFC server and sends the intermediate document there.
//
// The two phases are exposed separately (Open, then Complete /
// CompleteToTFC) so callers — interactive UIs and the Table 1/2 benchmark
// harness alike — can observe them independently.
package aea

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dra4wfms/internal/document"
	"dra4wfms/internal/dsig"
	"dra4wfms/internal/expr"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/secpol"
	"dra4wfms/internal/telemetry"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmlenc"
	"dra4wfms/internal/xmltree"
)

// Runtime telemetry: per-phase latency histograms mirroring the paper's
// cost decomposition (α = verify + decrypt, β = encrypt + sign) plus
// counters for signature-cascade size and replay rejections.
var (
	tel                 = telemetry.Default()
	mVerifiedSignatures = tel.Counter("aea_verify_signatures_total")
	mSignedCERs         = tel.Counter("aea_sign_ops_total")
	mDecryptedElements  = tel.Counter("aea_decrypt_elements_total")
	mReplayRejections   = tel.Counter("aea_replay_rejections_total")
)

// Typed failures an AEA can report.
var (
	// ErrNotParticipant: this principal is not the activity's executor.
	ErrNotParticipant = errors.New("aea: principal is not the participant of this activity")
	// ErrNotEnabled: the control-flow state does not enable the activity.
	ErrNotEnabled = errors.New("aea: activity is not enabled")
	// ErrReplay: this agent already executed this (process, activity,
	// iteration) — a duplicate or replayed document.
	ErrReplay = errors.New("aea: duplicate execution (replay)")
	// ErrAdvancedRequired: the definition conceals flow information, so a
	// basic-model completion is impossible; route via the TFC instead.
	ErrAdvancedRequired = errors.New("aea: definition conceals flow information; advanced model (TFC) required")
	// ErrConcealed: a branch condition references a variable this
	// principal cannot read (the Figure 4 situation).
	ErrConcealed = errors.New("aea: branch condition references a concealed variable")
	// ErrNoBranch: an XOR-split evaluated with no branch taken.
	ErrNoBranch = errors.New("aea: no XOR branch condition holds and there is no default branch")
	// ErrMissingInput: a required response was not provided.
	ErrMissingInput = errors.New("aea: missing required input")
	// ErrUnknownInput: an input names a variable the activity does not
	// declare as a response.
	ErrUnknownInput = errors.New("aea: input for undeclared response variable")
)

// Inputs carries the participant's responses, variable → value.
type Inputs map[string]string

// AEA is one participant's activity execution agent. It is safe for
// concurrent use; the replay guard is shared across goroutines.
type AEA struct {
	// Keys is the participant's key pair; Keys.Owner is the principal ID.
	Keys *pki.KeyPair
	// Registry resolves and trusts other principals' public keys.
	Registry *pki.Registry
	// Suite selects the signature suite for CERs this AEA signs; nil uses
	// the process-wide default (dsig.DefaultSuite).
	Suite dsig.Suite

	mu   sync.Mutex
	seen map[string]bool
}

// New creates an AEA for the given principal.
func New(keys *pki.KeyPair, reg *pki.Registry) *AEA {
	return &AEA{Keys: keys, Registry: reg, seen: make(map[string]bool)}
}

// Session is an opened activity: the document has been verified and the
// participant's view decrypted (phase α); Complete or CompleteToTFC
// performs phase β.
type Session struct {
	aea  *AEA
	work *document.Document // verified clone, still encrypted
	view *document.Document // decrypted view for this participant
	def  *wfdef.Definition
	act  *wfdef.Activity
	iter int

	// VerifiedSignatures is the number of signatures checked during Open —
	// the count behind the paper's "number of signatures to verify".
	VerifiedSignatures int
	// DecryptedElements is the number of elements decrypted for the view.
	DecryptedElements int
}

// Open verifies the received document and prepares the participant's view
// (the paper's α phase: decrypt cipher data and verify digital signatures).
func (a *AEA) Open(doc *document.Document, activityID string) (*Session, error) {
	return a.OpenCtx(context.Background(), doc, activityID)
}

// OpenCtx is Open carrying the caller's trace context: inside a sampled
// distributed trace the verify and decrypt phases land as aea-tier
// spans.
func (a *AEA) OpenCtx(ctx context.Context, doc *document.Document, activityID string) (*Session, error) {
	ctx, span := tel.StartSpanCtx(ctx, "aea_open_seconds")
	defer span.End()
	span.Trace().SetAttr("process", doc.ProcessID())
	span.Trace().SetAttr("activity", activityID)
	work := doc.Clone()
	vctx, verifySpan := tel.StartSpanCtx(ctx, "aea_verify_cascade_seconds")
	nsigs, err := work.VerifyAllCtx(vctx, a.Registry)
	verifySpan.End()
	if err != nil {
		return nil, fmt.Errorf("aea: document verification failed after %d valid signatures: %w", nsigs, err)
	}
	mVerifiedSignatures.Add(int64(nsigs))
	def, err := work.Definition()
	if err != nil {
		return nil, err
	}
	if err := def.Validate(); err != nil {
		return nil, fmt.Errorf("aea: embedded definition invalid: %w", err)
	}
	act := def.Activity(activityID)
	if act == nil {
		return nil, fmt.Errorf("aea: unknown activity %q", activityID)
	}
	if act.Participant != "" && act.Participant != a.Keys.Owner {
		return nil, fmt.Errorf("%w: %s is assigned to %s", ErrNotParticipant, activityID, act.Participant)
	}
	if act.Role != "" {
		id, err := a.Registry.Identity(a.Keys.Owner)
		if err != nil {
			return nil, err
		}
		if !id.HasRole(act.Role) {
			return nil, fmt.Errorf("%w: role %q required", ErrNotParticipant, act.Role)
		}
	}
	enabled, completed, err := document.Enabled(def, work)
	if err != nil {
		return nil, err
	}
	if completed {
		return nil, fmt.Errorf("%w: process already completed", ErrNotEnabled)
	}
	if !contains(enabled, activityID) {
		return nil, fmt.Errorf("%w: %s (enabled: %v)", ErrNotEnabled, activityID, enabled)
	}
	iter := work.LatestIteration(activityID) + 1
	if a.alreadySeen(replayKey(work.ProcessID(), activityID, iter)) {
		mReplayRejections.Inc()
		return nil, fmt.Errorf("%w: %s#%d of process %s", ErrReplay, activityID, iter, work.ProcessID())
	}

	view := work.Clone()
	_, decryptSpan := tel.StartSpanCtx(ctx, "aea_decrypt_view_seconds")
	ndec, err := xmlenc.DecryptVisible(view.Root, a.Keys)
	decryptSpan.End()
	if err != nil {
		return nil, fmt.Errorf("aea: decrypting view: %w", err)
	}
	mDecryptedElements.Add(int64(ndec))
	return &Session{
		aea: a, work: work, view: view, def: def, act: act, iter: iter,
		VerifiedSignatures: nsigs, DecryptedElements: ndec,
	}, nil
}

// Activity returns the activity being executed.
func (s *Session) Activity() *wfdef.Activity { return s.act }

// Iteration returns the loop iteration of this execution.
func (s *Session) Iteration() int { return s.iter }

// Definition returns the embedded workflow definition.
func (s *Session) Definition() *wfdef.Definition { return s.def }

// View returns the participant-visible document (encrypted elements this
// principal may read have been decrypted in place).
func (s *Session) View() *document.Document { return s.view }

// Requests returns the values of the activity's requested variables as
// visible to this participant; variables the participant cannot read are
// absent.
func (s *Session) Requests() map[string]string {
	vals := s.view.Values()
	out := map[string]string{}
	for _, r := range s.act.Requests {
		if v, ok := vals[r.Variable]; ok {
			out[r.Variable] = v
		}
	}
	return out
}

// Outcome is the result of completing an activity under the basic model.
type Outcome struct {
	// Doc is the document including this activity's new CER.
	Doc *document.Document
	// CER is the appended characteristic execution result.
	CER document.CER
	// Next lists the routed targets (activity IDs, or wfdef.EndID).
	Next []string
	// Completed reports whether the process instance reached the end.
	Completed bool
	// Routed holds one independent document clone per next activity, ready
	// to forward (AND-splits fork the document).
	Routed map[string]*document.Document
}

// Complete executes phase β of the basic operational model: validate the
// inputs, element-wise encrypt them per the security policy, decide the
// routing, and append the cascade-signed CER.
func (s *Session) Complete(inputs Inputs, now time.Time) (*Outcome, error) {
	return s.CompleteCtx(context.Background(), inputs, now)
}

// CompleteCtx is Complete carrying the caller's trace context (see
// AEA.OpenCtx).
func (s *Session) CompleteCtx(ctx context.Context, inputs Inputs, now time.Time) (*Outcome, error) {
	ctx, span := tel.StartSpanCtx(ctx, "aea_complete_seconds")
	defer span.End()
	span.Trace().SetAttr("process", s.work.ProcessID())
	span.Trace().SetAttr("activity", s.act.ID)
	if s.def.Policy.ConcealFlow {
		return nil, ErrAdvancedRequired
	}
	if err := s.validateInputs(inputs); err != nil {
		return nil, err
	}
	next, err := s.route(inputs)
	if err != nil {
		return nil, err
	}
	_, encryptSpan := tel.StartSpanCtx(ctx, "aea_encrypt_result_seconds")
	fields, err := secpol.EncryptFields(s.def, s.aea.Registry, s.act.ID, s.iter, inputs)
	encryptSpan.End()
	if err != nil {
		return nil, err
	}
	preds, err := document.PredecessorSignatures(s.def, s.work, s.act.ID)
	if err != nil {
		return nil, err
	}
	_, signSpan := tel.StartSpanCtx(ctx, "aea_sign_seconds")
	cer, err := s.work.AppendCER(document.AppendSpec{
		ActivityID:     s.act.ID,
		Iteration:      s.iter,
		Kind:           document.KindFinal,
		Participant:    s.aea.Keys.Owner,
		ResultChildren: fields,
		Next:           next,
		PredSigIDs:     preds,
		Signer:         s.aea.Keys,
		Suite:          s.aea.Suite,
	})
	signSpan.End()
	if err != nil {
		return nil, err
	}
	mSignedCERs.Inc()
	s.aea.markSeen(replayKey(s.work.ProcessID(), s.act.ID, s.iter))

	out := &Outcome{Doc: s.work, CER: cer, Next: next, Routed: map[string]*document.Document{}}
	for _, to := range next {
		if to == wfdef.EndID {
			out.Completed = true
			continue
		}
		out.Routed[to] = s.work.Clone()
	}
	return out, nil
}

// CompleteToTFC executes phase β of the advanced operational model: the
// raw result is encrypted as a whole to the TFC server, an intermediate
// CER (the paper's CERit) is appended and participant-signed, and the
// returned document must be sent to the TFC for policy encryption,
// timestamping and forwarding.
func (s *Session) CompleteToTFC(inputs Inputs) (*document.Document, error) {
	return s.CompleteToTFCCtx(context.Background(), inputs)
}

// CompleteToTFCCtx is CompleteToTFC carrying the caller's trace context
// (see AEA.OpenCtx).
func (s *Session) CompleteToTFCCtx(ctx context.Context, inputs Inputs) (*document.Document, error) {
	ctx, span := tel.StartSpanCtx(ctx, "aea_complete_tfc_seconds")
	defer span.End()
	span.Trace().SetAttr("process", s.work.ProcessID())
	span.Trace().SetAttr("activity", s.act.ID)
	tfcID := s.def.TFCFor(s.act.ID)
	if tfcID == "" {
		return nil, errors.New("aea: definition names no TFC server")
	}
	if err := s.validateInputs(inputs); err != nil {
		return nil, err
	}
	tfcKey, err := s.aea.Registry.PublicKey(tfcID)
	if err != nil {
		return nil, fmt.Errorf("aea: resolving TFC key: %w", err)
	}
	plain := xmltree.NewElement("PlainResult")
	vars := make([]string, 0, len(inputs))
	for v := range inputs {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		plain.AppendChild(document.Field(v, inputs[v]))
	}
	encID := fmt.Sprintf("encit-%s-%d", s.act.ID, s.iter)
	enc, err := xmlenc.Encrypt(plain, encID, xmlenc.Recipient{ID: tfcID, Key: tfcKey})
	if err != nil {
		return nil, err
	}
	preds, err := document.PredecessorSignatures(s.def, s.work, s.act.ID)
	if err != nil {
		return nil, err
	}
	_, signSpan := tel.StartSpanCtx(ctx, "aea_sign_seconds")
	_, err = s.work.AppendCER(document.AppendSpec{
		ActivityID:     s.act.ID,
		Iteration:      s.iter,
		Kind:           document.KindIntermediate,
		Participant:    s.aea.Keys.Owner,
		ResultChildren: []*xmltree.Node{enc},
		PredSigIDs:     preds,
		Signer:         s.aea.Keys,
		Suite:          s.aea.Suite,
	})
	signSpan.End()
	if err != nil {
		return nil, err
	}
	mSignedCERs.Inc()
	s.aea.markSeen(replayKey(s.work.ProcessID(), s.act.ID, s.iter))
	return s.work, nil
}

// Execute is the one-shot convenience: Open followed by Complete.
func (a *AEA) Execute(doc *document.Document, activityID string, inputs Inputs, now time.Time) (*Outcome, error) {
	return a.ExecuteCtx(context.Background(), doc, activityID, inputs, now)
}

// ExecuteCtx is Execute carrying the caller's trace context.
func (a *AEA) ExecuteCtx(ctx context.Context, doc *document.Document, activityID string, inputs Inputs, now time.Time) (*Outcome, error) {
	s, err := a.OpenCtx(ctx, doc, activityID)
	if err != nil {
		return nil, err
	}
	return s.CompleteCtx(ctx, inputs, now)
}

// ExecuteToTFC is the one-shot convenience for the advanced model.
func (a *AEA) ExecuteToTFC(doc *document.Document, activityID string, inputs Inputs) (*document.Document, error) {
	return a.ExecuteToTFCCtx(context.Background(), doc, activityID, inputs)
}

// ExecuteToTFCCtx is ExecuteToTFC carrying the caller's trace context.
func (a *AEA) ExecuteToTFCCtx(ctx context.Context, doc *document.Document, activityID string, inputs Inputs) (*document.Document, error) {
	s, err := a.OpenCtx(ctx, doc, activityID)
	if err != nil {
		return nil, err
	}
	return s.CompleteToTFCCtx(ctx, inputs)
}

func (s *Session) validateInputs(inputs Inputs) error {
	declared := map[string]wfdef.Response{}
	for _, r := range s.act.Responses {
		declared[r.Variable] = r
	}
	for v := range inputs {
		if _, ok := declared[v]; !ok {
			return fmt.Errorf("%w: %q (activity %s)", ErrUnknownInput, v, s.act.ID)
		}
	}
	for _, r := range s.act.Responses {
		if r.Required {
			if v, ok := inputs[r.Variable]; !ok || v == "" {
				return fmt.Errorf("%w: %q (activity %s)", ErrMissingInput, r.Variable, s.act.ID)
			}
		}
	}
	return nil
}

// route evaluates the activity's outgoing transitions under the basic
// model, using every variable visible to this participant plus the fresh
// inputs.
func (s *Session) route(inputs Inputs) ([]string, error) {
	next, err := secpol.Route(s.def, s.act, s.env(inputs))
	if err != nil {
		switch {
		case errors.Is(err, secpol.ErrUnreadableCondition):
			return nil, fmt.Errorf("%w: %v", ErrConcealed, err)
		case errors.Is(err, secpol.ErrNoBranch):
			return nil, fmt.Errorf("%w: %v", ErrNoBranch, err)
		}
		return nil, err
	}
	return next, nil
}

func (s *Session) env(inputs Inputs) expr.MapEnv {
	vals := s.view.Values()
	for k, v := range inputs {
		vals[k] = v
	}
	return secpol.Env(vals)
}

func (a *AEA) alreadySeen(key string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seen[key]
}

func (a *AEA) markSeen(key string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seen[key] = true
}

func replayKey(processID, activity string, iter int) string {
	return fmt.Sprintf("%s|%s|%d", processID, activity, iter)
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
