package aea

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dra4wfms/internal/document"
	"dra4wfms/internal/dsig"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmlenc"
)

var now = time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC)

type fixture struct {
	env    *testenv.Env
	def    *wfdef.Definition
	doc    *document.Document
	agents map[string]*AEA
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	env := testenv.Fig9(0)
	def := wfdef.Fig9A()
	doc, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	agents := map[string]*AEA{}
	for act, p := range wfdef.Fig9Participants {
		agents[act] = New(env.KeyOf(p), env.Registry)
	}
	return &fixture{env: env, def: def, doc: doc, agents: agents}
}

// runIteration executes one full pass A → (B1 ∥ B2) → C → D of Figure 9A,
// returning D's outcome.
func (f *fixture) runIteration(t *testing.T, doc *document.Document, accept bool) *Outcome {
	t.Helper()
	outA, err := f.agents["A"].Execute(doc, "A", Inputs{"request": "buy 10 servers", "attachment": "specs.pdf"}, now)
	if err != nil {
		t.Fatal(err)
	}
	outB1, err := f.agents["B1"].Execute(outA.Routed["B1"], "B1", Inputs{"techReview": "sound"}, now)
	if err != nil {
		t.Fatal(err)
	}
	outB2, err := f.agents["B2"].Execute(outA.Routed["B2"], "B2", Inputs{"budgetReview": "within budget"}, now)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := document.Merge(outB1.Routed["C"], outB2.Routed["C"])
	if err != nil {
		t.Fatal(err)
	}
	outC, err := f.agents["C"].Execute(merged, "C", Inputs{"summary": "all reviews positive"}, now)
	if err != nil {
		t.Fatal(err)
	}
	acceptStr := "false"
	if accept {
		acceptStr = "true"
	}
	outD, err := f.agents["D"].Execute(outC.Routed["D"], "D", Inputs{"accept": acceptStr}, now)
	if err != nil {
		t.Fatal(err)
	}
	return outD
}

func TestBasicModelFullRun(t *testing.T) {
	f := newFixture(t)
	outD := f.runIteration(t, f.doc, false)
	if outD.Completed || len(outD.Routed) != 1 || outD.Routed["A"] == nil {
		t.Fatalf("first pass should loop back to A: %+v", outD.Next)
	}
	outD2 := f.runIteration(t, outD.Routed["A"], true)
	if !outD2.Completed {
		t.Fatal("second pass should complete the process")
	}
	final := outD2.Doc
	if got := len(final.FinalCERs()); got != 10 {
		t.Fatalf("final CERs = %d, want 10", got)
	}
	if n, err := final.VerifyAll(f.env.Registry); err != nil || n != 11 {
		t.Fatalf("VerifyAll = %d, %v", n, err)
	}
	// Everyone is a default reader, so D's decision is decryptable by B1's
	// participant.
	view := final.Clone()
	if _, err := xmlenc.DecryptVisible(view.Root, f.env.KeyOf(wfdef.Fig9Participants["B1"])); err != nil {
		t.Fatal(err)
	}
	if view.Values()["accept"] != "true" {
		t.Fatalf("accept not visible: %v", view.Values())
	}
}

func TestAlphaGrowsBetaObservable(t *testing.T) {
	// The signature-verification count (α driver) grows along the chain.
	f := newFixture(t)
	s, err := f.agents["A"].Open(f.doc, "A")
	if err != nil {
		t.Fatal(err)
	}
	if s.VerifiedSignatures != 1 {
		t.Fatalf("initial VerifiedSignatures = %d", s.VerifiedSignatures)
	}
	out, err := s.Complete(Inputs{"request": "r"}, now)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := f.agents["B1"].Open(out.Routed["B1"], "B1")
	if err != nil {
		t.Fatal(err)
	}
	if s2.VerifiedSignatures != 2 {
		t.Fatalf("B1 VerifiedSignatures = %d, want 2", s2.VerifiedSignatures)
	}
}

func TestSessionAccessorsAndRequests(t *testing.T) {
	f := newFixture(t)
	outA, _ := f.agents["A"].Execute(f.doc, "A", Inputs{"request": "the request"}, now)
	s, err := f.agents["B1"].Open(outA.Routed["B1"], "B1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Activity().ID != "B1" || s.Iteration() != 0 || s.Definition().Name != "fig9-review" {
		t.Fatal("session accessors wrong")
	}
	reqs := s.Requests()
	if reqs["request"] != "the request" {
		t.Fatalf("Requests = %v", reqs)
	}
	if s.DecryptedElements == 0 {
		t.Fatal("no elements decrypted for view")
	}
	if s.View() == nil {
		t.Fatal("nil view")
	}
}

func TestWrongParticipantRejected(t *testing.T) {
	f := newFixture(t)
	if _, err := f.agents["B1"].Open(f.doc, "A"); !errors.Is(err, ErrNotParticipant) {
		t.Fatalf("err = %v, want ErrNotParticipant", err)
	}
}

func TestRoleEnforced(t *testing.T) {
	env := testenv.New(0)
	env.MustRegister("designer@x", "worker@x")
	def := wfdef.NewBuilder("roled", "designer@x").
		Activity("A", "", "worker@x").Role("approver").Response("v", "string", false).Done().
		Start("A").End("A").
		DefaultReaders("worker@x").
		MustBuild()
	doc, err := document.New(def, env.KeyOf("designer@x"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	agent := New(env.KeyOf("worker@x"), env.Registry)
	if _, err := agent.Open(doc, "A"); !errors.Is(err, ErrNotParticipant) {
		t.Fatalf("missing role accepted: %v", err)
	}
	// Re-register with the role.
	cert, _ := env.CA.Issue(pki.Identity{ID: "worker@x", Roles: []string{"approver"}},
		env.KeyOf("worker@x").Public(), env.Now, time.Hour)
	if err := env.Registry.Register(cert, env.Now); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Open(doc, "A"); err != nil {
		t.Fatalf("role holder rejected: %v", err)
	}
}

func TestNotEnabledRejected(t *testing.T) {
	f := newFixture(t)
	// D is not enabled on a fresh document.
	if _, err := f.agents["D"].Open(f.doc, "D"); !errors.Is(err, ErrNotEnabled) {
		t.Fatalf("err = %v, want ErrNotEnabled", err)
	}
	// C requires both branches (AND-join).
	outA, _ := f.agents["A"].Execute(f.doc, "A", Inputs{"request": "r"}, now)
	outB1, _ := f.agents["B1"].Execute(outA.Routed["B1"], "B1", Inputs{"techReview": "x"}, now)
	if _, err := f.agents["C"].Open(outB1.Routed["C"], "C"); !errors.Is(err, ErrNotEnabled) {
		t.Fatalf("AND-join with one branch: %v", err)
	}
	// Unknown activity.
	if _, err := f.agents["A"].Open(f.doc, "ZZ"); err == nil {
		t.Fatal("unknown activity accepted")
	}
}

func TestCompletedProcessRejectsFurtherWork(t *testing.T) {
	f := newFixture(t)
	outD := f.runIteration(t, f.doc, true)
	if !outD.Completed {
		t.Fatal("process should be complete")
	}
	if _, err := f.agents["A"].Open(outD.Doc, "A"); !errors.Is(err, ErrNotEnabled) {
		t.Fatalf("execution after completion: %v", err)
	}
}

func TestReplayRejected(t *testing.T) {
	f := newFixture(t)
	if _, err := f.agents["A"].Execute(f.doc, "A", Inputs{"request": "r"}, now); err != nil {
		t.Fatal(err)
	}
	// Same agent receives the same (pristine) document again.
	if _, err := f.agents["A"].Open(f.doc, "A"); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay accepted: %v", err)
	}
}

func TestTamperedDocumentRejected(t *testing.T) {
	f := newFixture(t)
	outA, _ := f.agents["A"].Execute(f.doc, "A", Inputs{"request": "legit"}, now)
	forged := outA.Routed["B1"].Clone()
	forged.Root.FindByID("res-A-0").SetText("forged result")
	if _, err := f.agents["B1"].Open(forged, "B1"); err == nil {
		t.Fatal("tampered document opened")
	}
}

func TestInputValidation(t *testing.T) {
	f := newFixture(t)
	s, err := f.agents["A"].Open(f.doc, "A")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Complete(Inputs{"bogus": "x", "request": "r"}, now); !errors.Is(err, ErrUnknownInput) {
		t.Fatalf("unknown input: %v", err)
	}
	if _, err := s.Complete(Inputs{}, now); !errors.Is(err, ErrMissingInput) {
		t.Fatalf("missing required input: %v", err)
	}
	// Valid completion still possible on the same session afterwards.
	if _, err := s.Complete(Inputs{"request": "r"}, now); err != nil {
		t.Fatalf("valid completion rejected: %v", err)
	}
}

func TestConfidentialityAcrossParticipants(t *testing.T) {
	// Restrict techReview to C's participant only; B2's participant must
	// not see it, and the process still completes.
	env := testenv.Fig9(0)
	def := wfdef.Fig9A()
	def.Policy.Rules = append(def.Policy.Rules, wfdef.ReadRule{
		Variable: "techReview",
		Readers:  []string{wfdef.Fig9Participants["C"]},
	})
	doc, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	agents := map[string]*AEA{}
	for act, p := range wfdef.Fig9Participants {
		agents[act] = New(env.KeyOf(p), env.Registry)
	}
	outA, _ := agents["A"].Execute(doc, "A", Inputs{"request": "r"}, now)
	outB1, _ := agents["B1"].Execute(outA.Routed["B1"], "B1", Inputs{"techReview": "secret assessment"}, now)
	outB2, _ := agents["B2"].Execute(outA.Routed["B2"], "B2", Inputs{"budgetReview": "ok"}, now)
	merged, _ := document.Merge(outB1.Routed["C"], outB2.Routed["C"])

	// B2's participant cannot see techReview even holding the whole doc.
	spy := merged.Clone()
	if _, err := xmlenc.DecryptVisible(spy.Root, env.KeyOf(wfdef.Fig9Participants["B2"])); err != nil {
		t.Fatal(err)
	}
	if _, visible := spy.Values()["techReview"]; visible {
		t.Fatal("techReview leaked to B2's participant")
	}

	// C's participant does see it via Requests.
	sC, err := agents["C"].Open(merged, "C")
	if err != nil {
		t.Fatal(err)
	}
	if sC.Requests()["techReview"] != "secret assessment" {
		t.Fatalf("C cannot read techReview: %v", sC.Requests())
	}
}

func TestConcealedConditionBlocksBasicRouting(t *testing.T) {
	// If D's participant cannot read the condition variable, the XOR-split
	// cannot be routed under the basic model (the Figure 4 problem).
	env := testenv.Fig9(0)
	def := wfdef.Fig9A()
	// The accept variable is produced by D but... conditions can also use
	// summary; make the loop condition depend on a variable D cannot read.
	def.Policy.Rules = append(def.Policy.Rules, wfdef.ReadRule{
		Variable: "summary",
		Readers:  []string{wfdef.Fig9Participants["A"]},
	})
	for i := range def.Transitions {
		switch def.Transitions[i].Condition {
		case "accept == true":
			def.Transitions[i].Condition = `accept == true && summary != ""`
		case "accept != true":
			def.Transitions[i].Condition = ""
		}
	}
	doc, err := document.New(def, env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	agents := map[string]*AEA{}
	for act, p := range wfdef.Fig9Participants {
		agents[act] = New(env.KeyOf(p), env.Registry)
	}
	outA, _ := agents["A"].Execute(doc, "A", Inputs{"request": "r"}, now)
	outB1, _ := agents["B1"].Execute(outA.Routed["B1"], "B1", Inputs{"techReview": "t"}, now)
	outB2, _ := agents["B2"].Execute(outA.Routed["B2"], "B2", Inputs{"budgetReview": "b"}, now)
	merged, _ := document.Merge(outB1.Routed["C"], outB2.Routed["C"])
	outC, err := agents["C"].Execute(merged, "C", Inputs{"summary": "s"}, now)
	if err != nil {
		t.Fatal(err)
	}
	_, err = agents["D"].Execute(outC.Routed["D"], "D", Inputs{"accept": "true"}, now)
	if !errors.Is(err, ErrConcealed) {
		t.Fatalf("err = %v, want ErrConcealed", err)
	}
}

func TestConcealFlowPolicyForcesAdvancedModel(t *testing.T) {
	env := testenv.Fig4(0)
	def := wfdef.Fig4()
	doc, err := document.New(def, env.KeyOf("designer@p0"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	peter := New(env.KeyOf(wfdef.Fig4Participants.Peter), env.Registry)
	s, err := peter.Open(doc, "A1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Complete(Inputs{"X": "1500"}, now); !errors.Is(err, ErrAdvancedRequired) {
		t.Fatalf("basic completion under concealed flow: %v", err)
	}
	// The advanced path works and yields an intermediate CER.
	out, err := s.CompleteToTFC(Inputs{"X": "1500"})
	if err != nil {
		t.Fatal(err)
	}
	cers := out.CERs()
	if len(cers) != 1 || cers[0].Kind() != document.KindIntermediate {
		t.Fatalf("CERs after CompleteToTFC = %v", cers)
	}
	if n, err := out.VerifyAll(env.Registry); err != nil || n != 2 {
		t.Fatalf("VerifyAll = %d, %v", n, err)
	}
	// Only the TFC can open the intermediate payload.
	payload := cers[0].Result().ChildElements()[0]
	if got := strings.Join(xmlenc.Recipients(payload), ","); got != "tfc@cloud" {
		t.Fatalf("intermediate recipients = %q", got)
	}
}

func TestCompleteToTFCRequiresTFC(t *testing.T) {
	f := newFixture(t) // Fig9A has no TFC
	s, err := f.agents["A"].Open(f.doc, "A")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CompleteToTFC(Inputs{"request": "r"}); err == nil {
		t.Fatal("CompleteToTFC without TFC succeeded")
	}
}

func TestExecuteToTFCConvenience(t *testing.T) {
	env := testenv.Fig4(0)
	def := wfdef.Fig4()
	doc, _ := document.New(def, env.KeyOf("designer@p0"), testenv.ProcessID(), now)
	peter := New(env.KeyOf(wfdef.Fig4Participants.Peter), env.Registry)
	out, err := peter.ExecuteToTFC(doc, "A1", Inputs{"X": "10"})
	if err != nil || len(out.CERs()) != 1 {
		t.Fatalf("ExecuteToTFC: %v", err)
	}
}

// TestEd25519AgentsInterop runs the full Figure 9A workflow with every AEA
// signing under the Ed25519 suite while the designer signature stays RSA:
// suites are selected per signature by the recorded algorithm, so a mixed
// cascade verifies end to end against the same registry.
func TestEd25519AgentsInterop(t *testing.T) {
	f := newFixture(t)
	for _, a := range f.agents {
		a.Suite, _ = dsig.SuiteFor(dsig.SignatureAlgEd25519)
	}
	outD := f.runIteration(t, f.doc, true)
	if !outD.Completed {
		t.Fatal("ed25519-signed pass should complete the process")
	}
	if n, err := outD.Doc.VerifyAll(f.env.Registry); err != nil || n != 6 {
		t.Fatalf("VerifyAll = %d, %v", n, err)
	}
	for _, cer := range outD.Doc.FinalCERs() {
		alg := cer.Signature().Child("SignedInfo").Child("SignatureMethod").AttrDefault("Algorithm", "")
		if alg != dsig.SignatureAlgEd25519 {
			t.Fatalf("CER signature algorithm = %q, want %s", alg, dsig.SignatureAlgEd25519)
		}
	}
}
