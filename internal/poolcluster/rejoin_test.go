package poolcluster

import (
	"fmt"
	"sync"
	"testing"
)

// aliveIn reports whether id is alive in the cluster's status view.
func aliveIn(c *Cluster, id string) bool {
	for _, n := range c.Status().Nodes {
		if n.ID == id {
			return n.Alive
		}
	}
	return false
}

// A detector-suspected node whose probe heals must be readmitted by the
// repair loop on its own; an administratively failed node must not.
func TestRepairAutoRejoinsHealedNode(t *testing.T) {
	c, nodes := testCluster(t, 3, Config{
		Replicas:       2,
		Boundaries:     testBoundaries,
		RepairInterval: -1, // drive repairOnce by hand
	})
	s := c.NewSession()
	for i := 0; i < 40; i++ {
		if err := s.Put(spreadRow(i), "doc", "content", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, c)

	// The failure detector declares n2 dead while it is unreachable.
	nodes["n2"].Down()
	c.suspect("n2")
	if aliveIn(c, "n2") {
		t.Fatal("suspected node still alive in status")
	}
	// Still unreachable: repair must not readmit it.
	c.repairOnce()
	if aliveIn(c, "n2") {
		t.Fatal("repair rejoined a node whose probe still fails")
	}
	// Healed: the next repair pass readmits it automatically.
	nodes["n2"].Up()
	c.repairOnce()
	if !aliveIn(c, "n2") {
		t.Fatal("repair did not rejoin a healed node")
	}
	quiesce(t, c)
	assertReplicasConverged(t, c, nodes)

	// An administrative FailNode quarantines: the node answers probes
	// (it was never actually down) but must stay out until an operator
	// rejoins it.
	if err := c.FailNode("n3"); err != nil {
		t.Fatal(err)
	}
	c.repairOnce()
	if aliveIn(c, "n3") {
		t.Fatal("repair rejoined an administratively failed node")
	}
	if err := c.Rejoin("n3"); err != nil {
		t.Fatal(err)
	}
	if !aliveIn(c, "n3") {
		t.Fatal("explicit rejoin did not readmit the quarantined node")
	}
}

// TestRejoinRacingRebalance flaps one node's membership while regions
// are actively rebalanced and writers keep writing: the coordinator must
// neither deadlock nor lose an acknowledged write, and the final
// membership must converge with the flapped node readmitted.
func TestRejoinRacingRebalance(t *testing.T) {
	c, nodes := testCluster(t, 3, Config{Replicas: 2, Boundaries: testBoundaries})
	s := c.NewSession()
	for i := 0; i < 40; i++ {
		if err := s.Put(spreadRow(i), "doc", "content", []byte(fmt.Sprintf("seed%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, c)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	// Membership flapper: n3 crashes, is detected, heals, rejoins — in a
	// tight loop, so rejoins land in the middle of migrations.
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				// Leave n3 healthy and readmitted.
				nodes["n3"].Up()
				_ = c.Rejoin("n3")
				return
			default:
			}
			nodes["n3"].Down()
			c.suspect("n3")
			nodes["n3"].Up()
			_ = c.Rejoin("n3")
		}
	}()
	// Rebalance churn: every pass migrates regions onto whichever nodes
	// currently lead the fewest — including the freshly rejoined one.
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = c.Rebalance() // expected to fail mid-flap sometimes
		}
	}()

	// Writers drive the data plane throughout the churn. A Put may fail
	// while ownership is in flux; only acknowledged writes must survive.
	acked := make(map[string]string)
	for i := 0; i < 200; i++ {
		row := fmt.Sprintf("race-%05d", i)
		val := fmt.Sprintf("v%d", i)
		if err := s.Put(row, "doc", "content", []byte(val)); err == nil {
			acked[row] = val
		}
	}
	close(stop)
	wg.Wait()

	quiesce(t, c)
	if !aliveIn(c, "n3") {
		t.Fatal("flapped node did not end up readmitted")
	}
	if len(acked) == 0 {
		t.Fatal("no write was acknowledged during the churn")
	}
	for row, val := range acked {
		got, ok := s.Get(row, "doc", "content")
		if !ok || string(got) != val {
			t.Fatalf("acknowledged write lost across rejoin/rebalance race: %s (got %q ok=%v)", row, got, ok)
		}
	}
	assertReplicasConverged(t, c, nodes)
}
