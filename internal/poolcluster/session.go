package poolcluster

import (
	"context"
	"sync"
	"time"

	"dra4wfms/internal/pool"
)

// Session is a read-your-writes handle onto the cluster, implementing
// pool.DocTable so the portal and monitor run over a clustered pool
// unchanged. Each write records the replication sequence it produced;
// each read routes to a replica — primary preferred — that has applied
// at least the session's own high-water mark for that region, waiting
// (bounded by Config.ReadTimeout) for catch-up rather than serving the
// session a state older than its own writes.
type Session struct {
	c *Cluster

	mu   sync.Mutex
	seen map[string]uint64 // region ID → highest seq this session wrote
}

// NewSession opens a read-your-writes session. Sessions are cheap and
// safe for concurrent use; one per server instance is typical.
func (c *Cluster) NewSession() *Session {
	return &Session{c: c, seen: make(map[string]uint64)}
}

func (s *Session) noteWrite(region string, seq uint64) {
	s.mu.Lock()
	if seq > s.seen[region] {
		s.seen[region] = seq
	}
	s.mu.Unlock()
}

func (s *Session) need(region string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen[region]
}

// Put stores value at (row, family, qualifier) through the replicated
// write path.
func (s *Session) Put(row, family, qualifier string, value []byte) error {
	return s.PutCtx(context.Background(), row, family, qualifier, value)
}

// PutCtx is Put carrying the caller's trace context; the replication
// intents inherit the traceparent, so the cross-node fan-out shows up
// as one trace.
func (s *Session) PutCtx(ctx context.Context, row, family, qualifier string, value []byte) error {
	if value == nil {
		value = []byte{}
	}
	region, seq, err := s.c.write(ctx, row, family, qualifier, value, false)
	if err != nil {
		return err
	}
	s.noteWrite(region, seq)
	return nil
}

// Delete writes a tombstone through the replicated write path.
func (s *Session) Delete(row, family, qualifier string) error {
	region, seq, err := s.c.write(context.Background(), row, family, qualifier, nil, true)
	if err != nil {
		return err
	}
	s.noteWrite(region, seq)
	return nil
}

// replicaFor picks a live replica of row's region that has applied at
// least this session's own writes, preferring the primary. When none
// has caught up yet it waits (the failover window), and past the read
// timeout it degrades to the most caught-up live replica rather than
// failing the read outright.
func (s *Session) replicaFor(row string) (NodeRef, bool) {
	e := s.c.entryFor(row)
	need := s.need(e.id)
	deadline := time.Now().Add(s.c.cfg.ReadTimeout)
	for {
		e.mu.Lock()
		holders := e.holders()
		e.mu.Unlock()
		var best NodeRef
		var bestApplied uint64
		for _, id := range holders {
			ref := s.c.aliveRef(id)
			if ref == nil {
				continue
			}
			applied, err := ref.AppliedSeq(e.id)
			if err != nil {
				s.c.suspect(id)
				continue
			}
			if applied >= need {
				return ref, true
			}
			if best == nil || applied > bestApplied {
				best, bestApplied = ref, applied
			}
		}
		if time.Now().After(deadline) {
			if best != nil {
				return best, true
			}
			return nil, false
		}
		time.Sleep(time.Millisecond)
	}
}

// Get returns the newest value at (row, family, qualifier).
func (s *Session) Get(row, family, qualifier string) ([]byte, bool) {
	return s.GetCtx(context.Background(), row, family, qualifier)
}

// GetCtx is Get carrying the caller's trace context.
func (s *Session) GetCtx(ctx context.Context, row, family, qualifier string) ([]byte, bool) {
	if row == "" {
		return nil, false
	}
	for attempt := 0; attempt < 3; attempt++ {
		ref, ok := s.replicaFor(row)
		if !ok {
			return nil, false
		}
		v, found, err := ref.Get(ctx, row, family, qualifier)
		if err == nil {
			return v, found
		}
		s.c.suspect(ref.ID())
	}
	return nil, false
}

// GetRow returns every live cell of a row.
func (s *Session) GetRow(row string) []pool.KeyValue {
	if row == "" {
		return nil
	}
	for attempt := 0; attempt < 3; attempt++ {
		ref, ok := s.replicaFor(row)
		if !ok {
			return nil
		}
		kvs, err := ref.GetRow(row)
		if err == nil {
			return kvs
		}
		s.c.suspect(ref.ID())
	}
	return nil
}

// GetVersions returns the retained versions of a cell, newest first.
func (s *Session) GetVersions(row, family, qualifier string) []pool.Cell {
	if row == "" {
		return nil
	}
	for attempt := 0; attempt < 3; attempt++ {
		ref, ok := s.replicaFor(row)
		if !ok {
			return nil
		}
		cells, err := ref.GetVersions(row, family, qualifier)
		if err == nil {
			return cells
		}
		s.c.suspect(ref.ID())
	}
	return nil
}

// Scan merges per-region scans in directory order, which is global row
// order — the range directory's payoff: each scan span touches only the
// nodes owning it. Filter and Limit are applied client-side (a filter
// function cannot cross the wire to a remote node); the per-region
// bounds and family/prefix filters are pushed down.
func (s *Session) Scan(opts pool.ScanOptions) []pool.KeyValue {
	return s.ScanCtx(context.Background(), opts)
}

// ScanCtx is Scan carrying the caller's trace context.
func (s *Session) ScanCtx(ctx context.Context, opts pool.ScanOptions) []pool.KeyValue {
	var out []pool.KeyValue
	for _, e := range s.c.entries {
		if opts.EndRow != "" && e.start != "" && e.start >= opts.EndRow {
			break
		}
		if e.end != "" && opts.StartRow != "" && opts.StartRow >= e.end {
			continue
		}
		remote := pool.ScanOptions{
			StartRow: maxKey(opts.StartRow, e.start),
			EndRow:   minEnd(opts.EndRow, e.end),
			Prefix:   opts.Prefix,
			Family:   opts.Family,
		}
		if opts.Filter == nil && opts.Limit > 0 {
			remote.Limit = opts.Limit - len(out)
		}
		kvs := s.scanEntry(ctx, e, remote)
		for _, kv := range kvs {
			if opts.Filter != nil && !opts.Filter(kv) {
				continue
			}
			out = append(out, kv)
			if opts.Limit > 0 && len(out) >= opts.Limit {
				return out
			}
		}
	}
	return out
}

// scanEntry runs one region's scan against a caught-up replica.
func (s *Session) scanEntry(ctx context.Context, e *regionEntry, opts pool.ScanOptions) []pool.KeyValue {
	// Route by any row inside the region; the start key is in-region by
	// construction.
	row := e.start
	if row == "" {
		row = "\x00"
	}
	for attempt := 0; attempt < 3; attempt++ {
		ref, ok := s.replicaFor(row)
		if !ok {
			return nil
		}
		kvs, err := ref.Scan(ctx, opts)
		if err == nil {
			return kvs
		}
		s.c.suspect(ref.ID())
	}
	return nil
}

func maxKey(a, b string) string {
	if a > b {
		return a
	}
	return b
}

// minEnd picks the tighter exclusive end bound, where "" means +∞.
func minEnd(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	if a < b {
		return a
	}
	return b
}

var _ pool.DocTable = (*Session)(nil)
