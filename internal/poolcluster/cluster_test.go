package poolcluster

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"dra4wfms/internal/pool"
	"dra4wfms/internal/relay"
)

// testNode builds an in-process node with the standard document families.
func testNode(t *testing.T, id string) *Node {
	t.Helper()
	cl, err := pool.NewCluster([]string{id}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := cl.CreateTable("docs",
		pool.FamilySpec{Name: "doc", MaxVersions: 3},
		pool.FamilySpec{Name: "meta", MaxVersions: 1})
	if err != nil {
		t.Fatal(err)
	}
	return NewNode(id, tbl)
}

// fastRelay keeps redelivery snappy so failover tests converge quickly.
func fastRelay() relay.Config {
	return relay.Config{
		Backoff: relay.BackoffPolicy{Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond},
		Breaker: relay.BreakerPolicy{Threshold: 1000, Cooldown: 10 * time.Millisecond},
	}
}

func testCluster(t *testing.T, n int, cfg Config) (*Cluster, map[string]*Node) {
	t.Helper()
	nodes := make(map[string]*Node, n)
	refs := make([]NodeRef, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i+1)
		node := testNode(t, id)
		nodes[id] = node
		refs = append(refs, node)
	}
	if cfg.Relay.Backoff.Base == 0 {
		cfg.Relay = fastRelay()
	}
	c, err := New(refs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c, nodes
}

func quiesce(t *testing.T, c *Cluster) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
}

// spreadRow distributes rows across the test boundaries a–z.
func spreadRow(i int) string {
	return fmt.Sprintf("%c-%05d", 'a'+i%20, i)
}

var testBoundaries = []string{"e", "j", "o", "t"}

func TestClusterReadYourWritesBasics(t *testing.T) {
	c, nodes := testCluster(t, 3, Config{Replicas: 2, Boundaries: testBoundaries})
	s := c.NewSession()
	const n = 200
	for i := 0; i < n; i++ {
		row := spreadRow(i)
		if err := s.Put(row, "doc", "content", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %s: %v", row, err)
		}
		// Read-your-writes must hold immediately, replica lag or not.
		got, ok := s.Get(row, "doc", "content")
		if !ok || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("read-your-writes violated at %s: got %q ok=%v", row, got, ok)
		}
	}
	// A full scan merges regions in global row order.
	kvs := s.Scan(pool.ScanOptions{Family: "doc"})
	if len(kvs) != n {
		t.Fatalf("scan returned %d cells, want %d", len(kvs), n)
	}
	for i := 1; i < len(kvs); i++ {
		if kvs[i-1].Row > kvs[i].Row {
			t.Fatalf("scan out of order: %q before %q", kvs[i-1].Row, kvs[i].Row)
		}
	}
	// Limit and Filter apply across the merged stream.
	limited := s.Scan(pool.ScanOptions{Family: "doc", Limit: 7})
	if len(limited) != 7 {
		t.Fatalf("limited scan returned %d cells", len(limited))
	}
	filtered := s.Scan(pool.ScanOptions{
		Family: "doc",
		Filter: func(kv pool.KeyValue) bool { return kv.Row[0] == 'a' },
	})
	for _, kv := range filtered {
		if kv.Row[0] != 'a' {
			t.Fatalf("filter leaked row %q", kv.Row)
		}
	}
	quiesce(t, c)
	assertReplicasConverged(t, c, nodes)
}

func TestClusterDeleteReplicates(t *testing.T) {
	c, nodes := testCluster(t, 2, Config{Replicas: 2, Boundaries: testBoundaries})
	s := c.NewSession()
	if err := s.Put("k-1", "doc", "content", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k-1", "doc", "content"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k-1", "doc", "content"); ok {
		t.Fatal("deleted cell still readable")
	}
	quiesce(t, c)
	for id, node := range nodes {
		if _, ok := node.Table().Get("k-1", "doc", "content"); ok {
			t.Fatalf("tombstone not applied on %s", id)
		}
	}
}

// TestClusterKillNodeUnderLoad is the zero-acked-write-loss property:
// a node dies mid-stream, every write still acknowledges (after
// failover), and after quiesce every acknowledged write is readable with
// identical versions on every surviving replica.
func TestClusterKillNodeUnderLoad(t *testing.T) {
	c, nodes := testCluster(t, 3, Config{Replicas: 2, Boundaries: testBoundaries})
	s := c.NewSession()
	type acked struct{ row, val string }
	var log []acked
	const n = 400
	killAt := n / 3
	var killed string
	for i := 0; i < n; i++ {
		row, val := spreadRow(i), fmt.Sprintf("v%d", i)
		if i == killAt {
			// Kill the node that owns the next row's region, so the very
			// next write exercises failover.
			_, killed = c.PrimaryFor(row)
			nodes[killed].Down()
		}
		if err := s.Put(row, "doc", "content", []byte(val)); err != nil {
			t.Fatalf("put %s (i=%d, killed=%s): %v", row, i, killed, err)
		}
		log = append(log, acked{row, val})
	}
	quiesce(t, c)
	lost := 0
	for _, a := range log {
		got, ok := s.Get(a.row, "doc", "content")
		if !ok || string(got) != a.val {
			lost++
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acknowledged writes lost after killing %s", lost, len(log), killed)
	}
	// The dead node must no longer hold any region.
	for _, r := range c.Status().Regions {
		for _, rep := range r.Replicas {
			if rep.Node == killed {
				t.Fatalf("dead node %s still holds %s", killed, r.ID)
			}
		}
	}
	assertReplicasConverged(t, c, nodes)
}

// TestMigrateWhileWriting drives concurrent writers while the region
// they write to migrates between nodes repeatedly: writes block-and-
// retry against the new owner, none are lost or misordered.
func TestMigrateWhileWriting(t *testing.T) {
	c, nodes := testCluster(t, 3, Config{Replicas: 2, Boundaries: testBoundaries})
	s := c.NewSession()
	region, _ := c.PrimaryFor("a-0")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	written := make(map[string]string)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := c.NewSession()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				row := fmt.Sprintf("a-w%d-%06d", w, i)
				val := fmt.Sprintf("val-%d-%d", w, i)
				if err := sess.Put(row, "doc", "content", []byte(val)); err != nil {
					t.Errorf("writer %d: put %s: %v", w, row, err)
					return
				}
				mu.Lock()
				written[row] = val
				mu.Unlock()
			}
		}(w)
	}
	targets := []string{"n2", "n3", "n1", "n3", "n2", "n1"}
	for _, dst := range targets {
		if err := c.MigrateRegion(region, dst); err != nil {
			t.Fatalf("migrate %s -> %s: %v", region, dst, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	quiesce(t, c)
	for row, val := range written {
		got, ok := s.Get(row, "doc", "content")
		if !ok || string(got) != val {
			t.Fatalf("write lost across migration: %s", row)
		}
	}
	assertReplicasConverged(t, c, nodes)
}

// TestRejoinWithStaleWAL kills a node, keeps writing, then rejoins it:
// the stale node must catch up from the current primaries (snapshot +
// repair), ending byte- and version-identical — never reintroducing its
// stale state.
func TestRejoinWithStaleWAL(t *testing.T) {
	c, nodes := testCluster(t, 3, Config{Replicas: 2, Boundaries: testBoundaries})
	s := c.NewSession()
	for i := 0; i < 100; i++ {
		if err := s.Put(spreadRow(i), "doc", "content", []byte(fmt.Sprintf("old%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, c)
	// n2 dies with whatever state it had (its "stale WAL").
	nodes["n2"].Down()
	if err := c.FailNode("n2"); err != nil {
		t.Fatal(err)
	}
	// Overwrite everything while n2 is gone, so every cell it froze is
	// stale, plus add new rows.
	for i := 0; i < 150; i++ {
		if err := s.Put(spreadRow(i), "doc", "content", []byte(fmt.Sprintf("new%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, c)

	nodes["n2"].Up()
	if err := c.Rejoin("n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	quiesce(t, c)

	// Every region n2 now holds must be identical — values AND versions
	// — to the region's primary.
	held := 0
	for _, r := range c.Status().Regions {
		var primary string
		holdsIt := false
		for _, rep := range r.Replicas {
			if rep.Primary {
				primary = rep.Node
			}
			if rep.Node == "n2" {
				holdsIt = true
			}
		}
		if !holdsIt {
			continue
		}
		held++
		want := scanRange(nodes[primary], r.Start, r.End)
		got := scanRange(nodes["n2"], r.Start, r.End)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("region %s diverged on rejoined node: primary %s has %d cells, n2 has %d",
				r.ID, primary, len(want), len(got))
		}
	}
	if held == 0 {
		t.Fatal("rebalance never placed a region on the rejoined node")
	}
	// And the session must see only the new values.
	for i := 0; i < 150; i++ {
		got, ok := s.Get(spreadRow(i), "doc", "content")
		if !ok || string(got) != fmt.Sprintf("new%d", i) {
			t.Fatalf("stale value resurfaced at %s: %q", spreadRow(i), got)
		}
	}
}

// TestReadYourWritesAcrossFailover pins a session to its own WAL
// sequence: after the primary dies before replicating, reads must wait
// for the promoted backup to receive the acknowledged write through the
// relay rather than serve older state.
func TestReadYourWritesAcrossFailover(t *testing.T) {
	c, nodes := testCluster(t, 2, Config{
		Replicas:       2,
		Boundaries:     testBoundaries,
		RepairInterval: -1, // only the relay may converge this test
	})
	s := c.NewSession()
	region, primary := c.PrimaryFor("a-1")
	backup := "n1"
	if primary == "n1" {
		backup = "n2"
	}
	// The backup is unreachable while the write lands: the intent is
	// journaled durably, delivery keeps failing.
	nodes[backup].Down()
	if err := s.Put("a-1", "doc", "content", []byte("pinned")); err != nil {
		t.Fatal(err)
	}
	// Primary dies; backup comes back stale and gets promoted.
	nodes[primary].Down()
	nodes[backup].Up()
	if err := c.FailNode(primary); err != nil {
		t.Fatal(err)
	}
	if _, p := c.PrimaryFor("a-1"); p != backup {
		t.Fatalf("expected %s promoted for %s, got %s", backup, region, p)
	}
	// The session's read must block until the relay redelivers the
	// acknowledged record to the promotee, then see its own write.
	got, ok := s.Get("a-1", "doc", "content")
	if !ok || string(got) != "pinned" {
		t.Fatalf("read-your-writes across failover: got %q ok=%v", got, ok)
	}
}

func TestStatusPersistAndOfflineRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, StatusFileName)
	c, _ := testCluster(t, 3, Config{Replicas: 2, Boundaries: testBoundaries, StatusPath: path})
	s := c.NewSession()
	for i := 0; i < 30; i++ {
		if err := s.Put(spreadRow(i), "doc", "content", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, c)
	if err := c.FailNode("n3"); err != nil {
		t.Fatal(err)
	}
	// Offline read via the directory path form.
	st, err := ReadStatusFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replicas != 2 || len(st.Regions) != len(testBoundaries)+1 {
		t.Fatalf("bad persisted status: %+v", st)
	}
	aliveByID := map[string]bool{}
	for _, n := range st.Nodes {
		aliveByID[n.ID] = n.Alive
	}
	if aliveByID["n3"] {
		t.Fatal("persisted status still shows n3 alive")
	}
	if st.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestDefaultBoundaries(t *testing.T) {
	if got := DefaultBoundaries(1); got != nil {
		t.Fatalf("DefaultBoundaries(1) = %v", got)
	}
	bs := DefaultBoundaries(4)
	if len(bs) != 3 {
		t.Fatalf("DefaultBoundaries(4) = %v", bs)
	}
	if err := validateBoundaries(bs); err != nil {
		t.Fatal(err)
	}
	if err := validateBoundaries([]string{"b", "a"}); err == nil {
		t.Fatal("descending boundaries accepted")
	}
	if err := validateBoundaries([]string{""}); err == nil {
		t.Fatal("empty boundary accepted")
	}
}

func TestRemoveNodeDrainsGracefully(t *testing.T) {
	c, nodes := testCluster(t, 3, Config{Replicas: 2, Boundaries: testBoundaries})
	s := c.NewSession()
	for i := 0; i < 120; i++ {
		if err := s.Put(spreadRow(i), "doc", "content", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, c)
	if err := c.RemoveNode("n1"); err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Status().Regions {
		for _, rep := range r.Replicas {
			if rep.Node == "n1" {
				t.Fatalf("drained node still holds %s", r.ID)
			}
		}
	}
	quiesce(t, c)
	for i := 0; i < 120; i++ {
		got, ok := s.Get(spreadRow(i), "doc", "content")
		if !ok || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("write lost across drain: %s", spreadRow(i))
		}
	}
	_ = nodes
}

// scanRange reads one region's cells (with versions) straight off a
// node's table, bypassing routing — the ground truth for divergence
// checks.
func scanRange(n *Node, start, end string) []pool.KeyValue {
	return n.Table().Scan(pool.ScanOptions{StartRow: start, EndRow: end})
}

// assertReplicasConverged verifies that after quiesce every live replica
// of every region holds exactly the primary's cells, versions included.
func assertReplicasConverged(t *testing.T, c *Cluster, nodes map[string]*Node) {
	t.Helper()
	for _, r := range c.Status().Regions {
		var primary string
		for _, rep := range r.Replicas {
			if rep.Primary {
				primary = rep.Node
			}
		}
		want := scanRange(nodes[primary], r.Start, r.End)
		for _, rep := range r.Replicas {
			if rep.Primary || !rep.Alive {
				continue
			}
			got := scanRange(nodes[rep.Node], r.Start, r.End)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("region %s: replica %s diverged from primary %s (%d vs %d cells)",
					r.ID, rep.Node, primary, len(got), len(want))
			}
		}
	}
}
