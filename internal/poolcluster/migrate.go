package poolcluster

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// Region migration holds the region's entry lock for the duration of the
// move, so concurrent writers simply block and then proceed against the
// new owner — the same wait-and-retry discipline pool.putKV uses for
// offline regions during splits. Nothing is lost mid-move: the snapshot
// is taken only once the outgoing primary has applied every acknowledged
// record, and the sequence numbering continues unbroken across the swap.

// migrateQuiesce bounds how long a migration waits for the outgoing
// primary to finish applying acknowledged records before giving up.
const migrateQuiesce = 5 * time.Second

// MigrateRegion moves a region's primary role to dst. If dst is already
// a backup it is caught up record-by-record and swapped in without a
// bulk copy; otherwise it is seeded from a snapshot. The outgoing
// primary stays in the replica set as a backup (preserving the replica
// count); the set is then trimmed back to the configured size.
func (c *Cluster) MigrateRegion(regionID, dst string) error {
	e, ok := c.entryByID(regionID)
	if !ok {
		return fmt.Errorf("poolcluster: unknown region %s", regionID)
	}
	dref := c.aliveRef(dst)
	if dref == nil {
		return fmt.Errorf("poolcluster: migration target %s is not a live node", dst)
	}

	e.mu.Lock()
	if e.primary == dst {
		e.mu.Unlock()
		return nil
	}
	p := c.aliveRef(e.primary)
	if p == nil {
		e.mu.Unlock()
		return fmt.Errorf("%w %s", ErrNoLivePrimary, e.id)
	}
	// Wait for the outgoing primary to be fully caught up (a fresh
	// promotee may still be receiving its gap from the relay). Writes
	// are blocked on e.mu, so once applied == seq the snapshot is
	// complete by construction.
	deadline := time.Now().Add(migrateQuiesce)
	for {
		applied, err := p.AppliedSeq(e.id)
		if err != nil {
			e.mu.Unlock()
			return fmt.Errorf("poolcluster: probing primary for %s: %w", e.id, err)
		}
		if applied == e.seq {
			break
		}
		if time.Now().After(deadline) {
			e.mu.Unlock()
			return fmt.Errorf("poolcluster: region %s not quiescent (primary applied %d of %d)", e.id, applied, e.seq)
		}
		time.Sleep(time.Millisecond)
	}

	wasBackup := false
	for _, b := range e.backups {
		if b == dst {
			wasBackup = true
			break
		}
	}
	if wasBackup {
		// Catch dst up in place, then swap roles without a copy.
		for {
			dApplied, err := dref.AppliedSeq(e.id)
			if err != nil {
				e.mu.Unlock()
				return fmt.Errorf("poolcluster: probing target for %s: %w", e.id, err)
			}
			if dApplied == e.seq {
				break
			}
			recs, complete, err := p.RecordsSince(e.id, dApplied)
			if err != nil {
				e.mu.Unlock()
				return fmt.Errorf("poolcluster: reading catch-up records for %s: %w", e.id, err)
			}
			if !complete {
				if err := c.reseedLocked(e, p, dref); err != nil {
					e.mu.Unlock()
					return err
				}
				continue
			}
			for _, rec := range recs {
				if err := dref.Apply(context.Background(), rec); err != nil {
					e.mu.Unlock()
					return fmt.Errorf("poolcluster: applying catch-up record to %s: %w", dst, err)
				}
			}
		}
		var rest []string
		for _, b := range e.backups {
			if b != dst {
				rest = append(rest, b)
			}
		}
		e.backups = rest
	} else {
		if err := c.reseedLocked(e, p, dref); err != nil {
			e.mu.Unlock()
			return err
		}
	}
	old := e.primary
	e.primary = dst
	// The outgoing primary has the full history — keep it as the first
	// backup, then trim the set back to the replica target.
	e.backups = append([]string{old}, e.backups...)
	if max := c.cfg.Replicas - 1; len(e.backups) > max {
		e.backups = e.backups[:max]
	}
	e.epoch++
	e.mu.Unlock()

	mMigrations.Inc()
	c.persistStatus()
	return nil
}

// reseedLocked bulk-copies the region from primary p to node ref. Caller
// holds e.mu, so the snapshot is a consistent image at applied == seq.
func (c *Cluster) reseedLocked(e *regionEntry, p, ref NodeRef) error {
	kvs, snapSeq, err := p.Snapshot(e.id, e.start, e.end)
	if err != nil {
		return fmt.Errorf("poolcluster: snapshotting %s: %w", e.id, err)
	}
	if err := ref.Import(e.id, kvs, snapSeq); err != nil {
		return fmt.Errorf("poolcluster: importing %s into %s: %w", e.id, ref.ID(), err)
	}
	return nil
}

// Move records one rebalancing migration.
type Move struct {
	Region string `json:"region"`
	From   string `json:"from"`
	To     string `json:"to"`
}

// Rebalance spreads region leadership evenly across live nodes, moving
// the fewest regions that restore balance. Returns the moves performed.
func (c *Cluster) Rebalance() ([]Move, error) {
	var moves []Move
	for {
		alive := c.aliveIDs()
		if len(alive) == 0 {
			return moves, fmt.Errorf("poolcluster: no live nodes")
		}
		counts := c.primaryCounts()
		// Only live nodes can shed or receive leadership.
		total := 0
		for _, id := range alive {
			total += counts[id]
		}
		ceil := (total + len(alive) - 1) / len(alive)
		// Find the most loaded live node above the ceiling.
		src := ""
		for _, id := range alive {
			if counts[id] > ceil && (src == "" || counts[id] > counts[src]) {
				src = id
			}
		}
		if src == "" {
			return moves, nil
		}
		dst := c.pickTarget("", src)
		if dst == "" || counts[dst] >= ceil {
			return moves, nil
		}
		region := ""
		ids := c.regionIDsLedBy(src)
		sort.Strings(ids)
		if len(ids) > 0 {
			region = ids[0]
		}
		if region == "" {
			return moves, nil
		}
		if err := c.MigrateRegion(region, dst); err != nil {
			return moves, err
		}
		moves = append(moves, Move{Region: region, From: src, To: dst})
	}
}

// regionIDsLedBy lists the regions a node currently leads.
func (c *Cluster) regionIDsLedBy(id string) []string {
	var out []string
	for _, e := range c.entries {
		e.mu.Lock()
		if e.primary == id {
			out = append(out, e.id)
		}
		e.mu.Unlock()
	}
	return out
}
