package poolcluster

import (
	"fmt"
	"sort"
	"sync"
)

// Region placement is a range directory, not a consistent-hash ring: an
// explicit ordered table of key spans, each mapping to a primary node
// and its backups — the same shape as HBase's META table, which the
// paper's Fig. 7 pool inherits. The choice (documented in DESIGN.md) is
// deliberate: the pool's readers are range scans (worklists, process
// listings, the monitoring map-reduce), and a hash ring would scatter
// every scan across all nodes, while a range directory keeps each scan
// span on one node and makes migration an explicit, observable unit
// (one directory entry) instead of an implicit token-ownership change.
//
// Boundaries are fixed at cluster creation; what moves is the entry →
// node assignment. Entry pointers are therefore stable for the cluster's
// lifetime, and per-entry mutexes serialize writes (and migrations)
// per region without a global write lock.

// regionEntry is one row of the range directory. The mutex guards every
// mutable field and serializes the region's write path: a writer holds
// it across the primary apply, so the primary's applied sequence is
// always contiguous and equal to Seq between writes.
type regionEntry struct {
	mu sync.Mutex

	id    string
	start string // inclusive; "" at the first entry
	end   string // exclusive; "" at the last entry

	// epoch increments on every ownership change (failover, migration);
	// it lets operators correlate directory snapshots over time.
	epoch uint64
	// seq is the last replication sequence number issued for the region.
	seq uint64
	// primary applies writes synchronously; backups receive the same
	// records through the relay.
	primary string
	backups []string
}

// holders returns primary + backups (the current replica set).
func (e *regionEntry) holders() []string {
	out := make([]string, 0, 1+len(e.backups))
	out = append(out, e.primary)
	out = append(out, e.backups...)
	return out
}

func (e *regionEntry) isHolder(node string) bool {
	if e.primary == node {
		return true
	}
	for _, b := range e.backups {
		if b == node {
			return true
		}
	}
	return false
}

// buildEntries lays out the directory from sorted interior boundaries:
// n+1 entries covering ["", "") end to end.
func buildEntries(boundaries []string) []*regionEntry {
	entries := make([]*regionEntry, 0, len(boundaries)+1)
	start := ""
	for i := 0; i <= len(boundaries); i++ {
		end := ""
		if i < len(boundaries) {
			end = boundaries[i]
		}
		entries = append(entries, &regionEntry{
			id:    fmt.Sprintf("region-%04d", i),
			start: start,
			end:   end,
		})
		start = end
	}
	return entries
}

// DefaultBoundaries spreads n regions uniformly over the single-byte
// keyspace. It is a generic default — deployments whose rows cluster
// under one prefix (e.g. the portal's "proc-" process IDs) should pass
// explicit boundaries tuned to their key distribution instead.
func DefaultBoundaries(n int) []string {
	if n <= 1 {
		return nil
	}
	out := make([]string, 0, n-1)
	for i := 1; i < n; i++ {
		out = append(out, string([]byte{byte(i * 256 / n)}))
	}
	return out
}

// validateBoundaries checks strict ascending order and no empty strings
// (the empty string is the implicit table start/end).
func validateBoundaries(bs []string) error {
	for i, b := range bs {
		if b == "" {
			return fmt.Errorf("poolcluster: boundary %d is empty", i)
		}
		if i > 0 && bs[i-1] >= b {
			return fmt.Errorf("poolcluster: boundaries not strictly ascending at %d (%q >= %q)", i, bs[i-1], b)
		}
	}
	return nil
}

// entryFor routes a row to its directory entry. Entries are immutable in
// count and bounds, so no lock is needed for the lookup itself.
func (c *Cluster) entryFor(row string) *regionEntry {
	i := sort.Search(len(c.entries), func(i int) bool {
		e := c.entries[i]
		return e.end == "" || row < e.end
	})
	return c.entries[i]
}

// entryByID resolves a region by directory id.
func (c *Cluster) entryByID(id string) (*regionEntry, bool) {
	for _, e := range c.entries {
		if e.id == id {
			return e, true
		}
	}
	return nil, false
}
