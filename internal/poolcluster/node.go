// Package poolcluster turns the single-process document pool of
// internal/pool into a clustered one: a range directory places each
// region's key span on one of N pool nodes, every mutation is applied
// synchronously on the region's primary and replicated to its backups as
// CRC-framed WAL records carried over the internal/relay durable-delivery
// machinery, and regions migrate between nodes on join, leave, and death.
// See DESIGN.md "Clustered pool" for the protocol and its guarantees.
package poolcluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dra4wfms/internal/pool"
)

// ErrNodeDown is returned by a Node whose process is (simulated or
// really) dead. The relay treats it as retryable; the cluster treats it
// as a failover trigger.
var ErrNodeDown = errors.New("poolcluster: node is down")

// errBadFrame marks an undecodable replication frame; the transport maps
// it to a permanent relay failure (retrying corruption is pointless).
var errBadFrame = errors.New("poolcluster: bad replication frame")

// Record is one replicated mutation: the coordinator's per-region
// sequence number plus the CRC-framed WAL record (pool.EncodeMutationFrame)
// carrying the cell and its coordinator-assigned version.
type Record struct {
	Region string `json:"region"`
	Seq    uint64 `json:"seq"`
	Frame  []byte `json:"frame"`
}

// RegionApplied is one region's replication progress on one node.
type RegionApplied struct {
	Region string `json:"region"`
	// Applied is the contiguous high-water mark: every record with
	// seq <= Applied has been applied to the local table.
	Applied uint64 `json:"applied"`
	// Pending counts records received out of order, parked until the
	// gap before them arrives.
	Pending int `json:"pending"`
}

// NodeStatus is a node's self-reported state.
type NodeStatus struct {
	ID string `json:"id"`
	// MaxVersion is the node table's logical version clock; the
	// coordinator seeds its global clock from the cluster-wide maximum.
	MaxVersion int64           `json:"max_version"`
	Regions    []RegionApplied `json:"regions,omitempty"`
}

// NodeRef is the coordinator's handle to one pool node, local
// (in-process *Node) or remote (httpapi.RemoteNode over HTTP). All
// methods are safe for concurrent use.
type NodeRef interface {
	ID() string
	// Apply delivers one replicated record. Records may arrive out of
	// order and duplicated: the node applies them to its table in
	// sequence order and ignores records at or below its applied mark.
	Apply(ctx context.Context, rec Record) error
	// AppliedSeq reports the region's contiguous applied high-water mark.
	AppliedSeq(region string) (uint64, error)
	// RecordsSince returns the retained records with seq > after, in
	// order. complete is false when the node's bounded log no longer
	// reaches back to after+1 (the caller must fall back to a snapshot).
	RecordsSince(region string, after uint64) (recs []Record, complete bool, err error)
	// Snapshot returns the latest live cells in [start, end) plus the
	// region's applied mark at the time of the copy.
	Snapshot(region, start, end string) ([]pool.KeyValue, uint64, error)
	// Import seeds a region: applies kvs (versions preserved) and fast-
	// forwards the region's applied mark to seq.
	Import(region string, kvs []pool.KeyValue, seq uint64) error
	Status() (NodeStatus, error)

	// Reads, served from the node's local table.
	Get(ctx context.Context, row, family, qualifier string) ([]byte, bool, error)
	GetRow(row string) ([]pool.KeyValue, error)
	GetVersions(row, family, qualifier string) ([]pool.Cell, error)
	Scan(ctx context.Context, opts pool.ScanOptions) ([]pool.KeyValue, error)
}

// nodeRegionLog bounds the per-region catch-up log a node retains: a
// lagging replica that is further behind than this is reseeded from a
// snapshot instead of replayed record by record.
const nodeRegionLog = 4096

// nodeRegion is one region's replication state on one node.
type nodeRegion struct {
	applied uint64
	// pending parks out-of-order records until the gap closes.
	pending map[uint64]Record
	// log holds recently applied records for RecordsSince; logFrom is
	// the seq of log[0] (log covers [logFrom, applied]).
	log     []Record
	logFrom uint64
}

// Node is an in-process pool node: one table, replication bookkeeping
// per region, and a kill switch for failover drills. The same type backs
// the drapool daemon (fronted by httpapi's node endpoints) and the
// in-process clusters the tests and benchmarks build.
type Node struct {
	id    string
	table *pool.Table

	mu      sync.Mutex
	down    bool
	regions map[string]*nodeRegion
}

// NewNode wraps table as a cluster node. The table must declare every
// family the cluster's writers use.
func NewNode(id string, table *pool.Table) *Node {
	return &Node{id: id, table: table, regions: make(map[string]*nodeRegion)}
}

// ID returns the node's cluster-unique identifier.
func (n *Node) ID() string { return n.id }

// Table exposes the backing table (verification in tests and benchmarks).
func (n *Node) Table() *pool.Table { return n.table }

// Down simulates the node's process dying: every subsequent call fails
// with ErrNodeDown and the in-memory state is frozen as-is, which is
// exactly the "stale WAL" a killed process rejoins with.
func (n *Node) Down() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = true
}

// Up revives a downed node with whatever (stale) state it froze at.
func (n *Node) Up() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = false
}

func (n *Node) region(region string) *nodeRegion {
	r, ok := n.regions[region]
	if !ok {
		r = &nodeRegion{pending: make(map[uint64]Record), logFrom: 1}
		n.regions[region] = r
	}
	return r
}

// Apply ingests one replicated record. Out-of-order records are parked;
// records are applied to the table strictly in sequence order so the
// applied mark is always contiguous, and duplicates (seq <= applied) are
// acknowledged without re-applying — the relay's at-least-once delivery
// becomes exactly-once application.
func (n *Node) Apply(ctx context.Context, rec Record) error {
	_ = ctx
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return ErrNodeDown
	}
	if rec.Seq == 0 {
		return fmt.Errorf("%w: zero sequence", errBadFrame)
	}
	r := n.region(rec.Region)
	if rec.Seq <= r.applied {
		return nil // duplicate delivery
	}
	if _, _, err := pool.DecodeMutationFrame(rec.Frame); err != nil {
		return fmt.Errorf("%w: %v", errBadFrame, err)
	}
	r.pending[rec.Seq] = rec
	return n.drainLocked(r)
}

// drainLocked applies every contiguously available pending record.
func (n *Node) drainLocked(r *nodeRegion) error {
	for {
		next, ok := r.pending[r.applied+1]
		if !ok {
			return nil
		}
		_, m, err := pool.DecodeMutationFrame(next.Frame)
		if err != nil {
			return fmt.Errorf("%w: %v", errBadFrame, err)
		}
		if err := n.table.ApplyReplicated(m); err != nil {
			return err
		}
		delete(r.pending, next.Seq)
		r.applied = next.Seq
		r.log = append(r.log, next)
		if len(r.log) > nodeRegionLog {
			drop := len(r.log) - nodeRegionLog
			r.log = append([]Record(nil), r.log[drop:]...)
			r.logFrom += uint64(drop)
		}
	}
}

// AppliedSeq reports the region's contiguous applied mark.
func (n *Node) AppliedSeq(region string) (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return 0, ErrNodeDown
	}
	return n.region(region).applied, nil
}

// RecordsSince returns retained records with seq > after.
func (n *Node) RecordsSince(region string, after uint64) ([]Record, bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil, false, ErrNodeDown
	}
	r := n.region(region)
	if after >= r.applied {
		return nil, true, nil
	}
	if after+1 < r.logFrom {
		return nil, false, nil // trimmed; caller must snapshot
	}
	out := make([]Record, 0, r.applied-after)
	for _, rec := range r.log {
		if rec.Seq > after {
			out = append(out, rec)
		}
	}
	return out, true, nil
}

// Snapshot copies the latest live cells in [start, end).
func (n *Node) Snapshot(region, start, end string) ([]pool.KeyValue, uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil, 0, ErrNodeDown
	}
	kvs := n.table.Scan(pool.ScanOptions{StartRow: start, EndRow: end})
	return kvs, n.region(region).applied, nil
}

// Import seeds a region from a snapshot: versions are preserved by
// ApplyReplicated, the applied mark jumps to seq, and the catch-up log
// restarts after it (earlier records are unrecoverable here by design —
// the snapshot already contains their effects).
func (n *Node) Import(region string, kvs []pool.KeyValue, seq uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return ErrNodeDown
	}
	for _, kv := range kvs {
		m := pool.Mutation{Del: kv.IsTombstone(), KV: kv}
		if err := n.table.ApplyReplicated(m); err != nil {
			return err
		}
	}
	r := n.region(region)
	if seq > r.applied {
		r.applied = seq
		r.log = nil
		r.logFrom = seq + 1
	}
	for s := range r.pending {
		if s <= r.applied {
			delete(r.pending, s)
		}
	}
	return nil
}

// Status reports the node's replication progress across its regions.
func (n *Node) Status() (NodeStatus, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return NodeStatus{}, ErrNodeDown
	}
	st := NodeStatus{ID: n.id, MaxVersion: n.table.VersionClock()}
	names := make([]string, 0, len(n.regions))
	for name := range n.regions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := n.regions[name]
		st.Regions = append(st.Regions, RegionApplied{Region: name, Applied: r.applied, Pending: len(r.pending)})
	}
	return st, nil
}

// Get serves a read from the local table.
func (n *Node) Get(ctx context.Context, row, family, qualifier string) ([]byte, bool, error) {
	if n.isDown() {
		return nil, false, ErrNodeDown
	}
	v, ok := n.table.GetCtx(ctx, row, family, qualifier)
	return v, ok, nil
}

// GetRow serves a whole-row read from the local table.
func (n *Node) GetRow(row string) ([]pool.KeyValue, error) {
	if n.isDown() {
		return nil, ErrNodeDown
	}
	return n.table.GetRow(row), nil
}

// GetVersions serves a versioned read from the local table.
func (n *Node) GetVersions(row, family, qualifier string) ([]pool.Cell, error) {
	if n.isDown() {
		return nil, ErrNodeDown
	}
	return n.table.GetVersions(row, family, qualifier), nil
}

// Scan serves a range scan from the local table.
func (n *Node) Scan(ctx context.Context, opts pool.ScanOptions) ([]pool.KeyValue, error) {
	if n.isDown() {
		return nil, ErrNodeDown
	}
	return n.table.ScanCtx(ctx, opts), nil
}

func (n *Node) isDown() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

var _ NodeRef = (*Node)(nil)
