package poolcluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dra4wfms/internal/pool"
	"dra4wfms/internal/relay"
	"dra4wfms/internal/telemetry"
	"dra4wfms/internal/trace"
)

var (
	tel         = telemetry.Default()
	mWrites     = tel.Counter("poolcluster_writes_total")
	mReplicated = tel.Counter("poolcluster_replicated_records_total")
	mFailovers  = tel.Counter("poolcluster_failovers_total")
	mRejoins    = tel.Counter("poolcluster_rejoins_total")
	mMigrations = tel.Counter("poolcluster_migrations_total")
	gMaxLag     = tel.Gauge("poolcluster_max_replica_lag")
)

// KindReplicate is the relay delivery kind for replicated WAL records.
const KindReplicate = "replicate"

// ErrNoLivePrimary is returned when a region's write or read cannot find
// a live owner within the configured timeout.
var ErrNoLivePrimary = errors.New("poolcluster: no live primary for region")

// Config tunes a Cluster. The zero value is usable for a test cluster:
// 2 replicas, 4 regions with generic boundaries, a memory-only
// replication outbox, and in-process repair every 100ms.
type Config struct {
	// Replicas is the total copies of each region, primary included
	// (default 2, clamped to the node count). Zero-acked-write-loss on
	// node death needs at least 2.
	Replicas int
	// Regions is the directory size when Boundaries is nil (default 4).
	Regions int
	// Boundaries are explicit interior range boundaries, strictly
	// ascending. Overrides Regions.
	Boundaries []string
	// RelayDir is the replication outbox WAL path; "" keeps the outbox
	// in memory (replication intents then do not survive a coordinator
	// crash — see DESIGN.md).
	RelayDir string
	// Relay tunes the replication relay (retries, backoff, breakers).
	Relay relay.Config
	// StatusPath, when set, receives an atomically written JSON snapshot
	// of the directory on every topology change (for offline
	// `dractl cluster status -data-dir`).
	StatusPath string
	// WriteTimeout bounds how long a write waits out a failover before
	// giving up (default 10s).
	WriteTimeout time.Duration
	// ReadTimeout bounds how long a session waits for a replica to catch
	// up to its own writes before settling for the most caught-up one
	// (default 5s).
	ReadTimeout time.Duration
	// RepairInterval paces the anti-entropy loop that re-converges
	// lagging replicas directly from their primary (default 100ms;
	// negative disables the loop — tests drive repairOnce by hand).
	RepairInterval time.Duration
}

func (c Config) withDefaults(nodes int) Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > nodes {
		c.Replicas = nodes
	}
	if c.Regions <= 0 {
		c.Regions = 4
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 5 * time.Second
	}
	if c.RepairInterval == 0 {
		c.RepairInterval = 100 * time.Millisecond
	}
	return c
}

// member is one node's membership record. alive is the coordinator's
// failure-detector verdict, not the node's own opinion. quarantined
// marks an *administrative* removal (FailNode/RemoveNode): the repair
// loop auto-rejoins dead members whose probes heal, but never
// quarantined ones — an operator took them out, only an operator
// (Rejoin) puts them back.
type member struct {
	ref         NodeRef
	alive       bool
	quarantined bool
}

// Cluster is the coordinator for a clustered document pool: it owns the
// range directory, drives the write path (synchronous primary apply +
// durable replication intents through the relay), performs failover and
// migration, and hands out read-your-writes Sessions.
//
// Lock ordering: a regionEntry's mutex may be held while taking the
// cluster's membership RLock, never the other way around; node-internal
// locks are innermost.
type Cluster struct {
	cfg     Config
	entries []*regionEntry

	mu      sync.RWMutex
	members map[string]*member
	order   []string // node IDs in join order

	rly   *relay.Relay
	clock atomic.Int64 // global version clock across all nodes

	stopCh chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New builds a cluster over the given nodes, assigns regions round-robin,
// seeds the global version clock from the nodes' tables, and starts the
// replication relay and the repair loop.
func New(refs []NodeRef, cfg Config) (*Cluster, error) {
	if len(refs) == 0 {
		return nil, errors.New("poolcluster: need at least one node")
	}
	cfg = cfg.withDefaults(len(refs))
	boundaries := cfg.Boundaries
	if boundaries == nil {
		boundaries = DefaultBoundaries(cfg.Regions)
	}
	if err := validateBoundaries(boundaries); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:     cfg,
		entries: buildEntries(boundaries),
		members: make(map[string]*member, len(refs)),
		stopCh:  make(chan struct{}),
	}
	for _, ref := range refs {
		id := ref.ID()
		if id == "" {
			return nil, errors.New("poolcluster: node with empty ID")
		}
		if _, dup := c.members[id]; dup {
			return nil, fmt.Errorf("poolcluster: duplicate node ID %s", id)
		}
		c.members[id] = &member{ref: ref, alive: true}
		c.order = append(c.order, id)
	}
	// Round-robin placement: entry i's primary is node i mod n, backups
	// the next replicas-1 nodes.
	for i, e := range c.entries {
		e.primary = c.order[i%len(c.order)]
		for r := 1; r < cfg.Replicas; r++ {
			e.backups = append(e.backups, c.order[(i+r)%len(c.order)])
		}
	}
	// Seed the version clock past every node's table clock, so versions
	// minted here never collide with pre-existing cells. Unreachable
	// nodes are skipped; they catch up on rejoin.
	var maxVer int64
	for _, ref := range refs {
		if st, err := ref.Status(); err == nil && st.MaxVersion > maxVer {
			maxVer = st.MaxVersion
		}
	}
	c.clock.Store(maxVer)

	ob, err := relay.OpenOutbox(cfg.RelayDir)
	if err != nil {
		return nil, fmt.Errorf("poolcluster: opening replication outbox: %w", err)
	}
	c.rly = relay.New(ob, relay.TransportFunc(c.deliver), cfg.Relay)

	if cfg.RepairInterval > 0 {
		c.wg.Add(1)
		go c.repairLoop(cfg.RepairInterval)
	}
	c.persistStatus()
	return c, nil
}

// Close stops the repair loop and the replication relay (flushing its
// journal state, not its queue — use Quiesce first for a clean handoff).
func (c *Cluster) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(c.stopCh)
	c.wg.Wait()
	c.persistStatus()
	return c.rly.Close()
}

// Relay exposes the replication relay (stats, DLQ inspection).
func (c *Cluster) Relay() *relay.Relay { return c.rly }

// Replicas returns the configured copies per region.
func (c *Cluster) Replicas() int { return c.cfg.Replicas }

// aliveRef resolves a node ID to its handle iff the failure detector
// currently believes it alive.
func (c *Cluster) aliveRef(id string) NodeRef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := c.members[id]
	if m == nil || !m.alive {
		return nil
	}
	return m.ref
}

// anyRef resolves a node ID regardless of liveness.
func (c *Cluster) anyRef(id string) NodeRef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if m := c.members[id]; m != nil {
		return m.ref
	}
	return nil
}

// aliveIDs returns the IDs the detector believes alive, in join order.
func (c *Cluster) aliveIDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.order))
	for _, id := range c.order {
		if m := c.members[id]; m != nil && m.alive {
			out = append(out, id)
		}
	}
	return out
}

// write is the replicated write path. Under the region's lock it assigns
// a global version and the next replication sequence number, applies the
// framed record synchronously on the primary, then — still before the
// caller sees success — journals one replication intent per backup into
// the relay's durable outbox. "Acknowledged" therefore means: applied on
// the primary AND queued durably for every backup; a backup that dies
// before applying it gets the record again from the outbox or from the
// repair loop, so no acknowledged write is lost while any replica
// survives. A failed primary apply marks the node suspect, triggers
// failover, and retries against the promoted primary.
func (c *Cluster) write(ctx context.Context, row, family, qualifier string, value []byte, del bool) (string, uint64, error) {
	ctx, span := tel.StartSpanCtx(ctx, "poolcluster_put_seconds")
	defer span.End()
	if row == "" {
		return "", 0, pool.ErrEmptyRow
	}
	e := c.entryFor(row)
	deadline := time.Now().Add(c.cfg.WriteTimeout)
	for {
		// A propagated caller deadline bounds the retry loop tighter than
		// the cluster's own WriteTimeout: once the caller stops waiting,
		// burning further attempts (and primary applies) is pure waste.
		if cerr := ctx.Err(); cerr != nil {
			return "", 0, fmt.Errorf("poolcluster: write to %s abandoned: %w", e.id, cerr)
		}
		e.mu.Lock()
		primary := c.aliveRef(e.primary)
		if primary == nil {
			e.mu.Unlock()
			if time.Now().After(deadline) {
				return "", 0, fmt.Errorf("%w %s", ErrNoLivePrimary, e.id)
			}
			time.Sleep(2 * time.Millisecond)
			continue
		}
		version := c.clock.Add(1)
		kv := pool.KeyValue{Row: row, Family: family, Qualifier: qualifier,
			Cell: pool.Cell{Value: value, Version: version}}
		frame, err := pool.EncodeMutationFrame(e.seq+1, pool.Mutation{Del: del, KV: kv})
		if err != nil {
			e.mu.Unlock()
			return "", 0, err
		}
		rec := Record{Region: e.id, Seq: e.seq + 1, Frame: frame}
		if err := primary.Apply(ctx, rec); err != nil {
			e.mu.Unlock()
			if !errors.Is(err, ErrNodeDown) {
				// Application-level rejection (unknown family, bad
				// frame): the node is healthy, the write is wrong.
				return "", 0, err
			}
			c.suspect(primary.ID())
			if time.Now().After(deadline) {
				return "", 0, fmt.Errorf("poolcluster: write to %s failed: %w", e.id, err)
			}
			continue
		}
		e.seq = rec.Seq
		backups := append([]string(nil), e.backups...)
		e.mu.Unlock()

		payload, err := json.Marshal(rec)
		if err != nil {
			return "", 0, fmt.Errorf("poolcluster: encoding replication record: %w", err)
		}
		tp := trace.TraceparentFromContext(ctx)
		for _, b := range backups {
			key := fmt.Sprintf("%s|%s|%d|%s", KindReplicate, rec.Region, rec.Seq, b)
			if _, _, err := c.rly.EnqueueTraced(b, KindReplicate, key, tp, payload); err != nil {
				return "", 0, fmt.Errorf("poolcluster: journaling replication intent for %s: %w", b, err)
			}
			mReplicated.Inc()
		}
		mWrites.Inc()
		return rec.Region, rec.Seq, nil
	}
}

// deliver is the relay transport: it routes a journaled replication
// record to its backup node. Undecodable payloads are permanent (retrying
// corruption is pointless); a down node is retryable — the relay's
// backoff and per-destination breaker pace the redelivery.
func (c *Cluster) deliver(ctx context.Context, e relay.Entry) error {
	if e.Kind != KindReplicate {
		return relay.Permanent(fmt.Errorf("poolcluster: unknown delivery kind %q", e.Kind))
	}
	var rec Record
	if err := json.Unmarshal(e.Payload, &rec); err != nil {
		return relay.Permanent(fmt.Errorf("poolcluster: undecodable replication payload: %w", err))
	}
	ref := c.aliveRef(e.Dest)
	if ref == nil {
		return fmt.Errorf("%w: %s", ErrNodeDown, e.Dest)
	}
	err := ref.Apply(ctx, rec)
	if err != nil && errors.Is(err, errBadFrame) {
		return relay.Permanent(err)
	}
	return err
}

// Quiesce blocks until every live replica of every region has applied
// every acknowledged write (or ctx expires). It drives the repair loop
// inline so convergence does not depend on timer cadence.
func (c *Cluster) Quiesce(ctx context.Context) error {
	for {
		if lag := c.repairOnce(); lag == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("poolcluster: quiesce: %w", ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}
