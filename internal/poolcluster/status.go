package poolcluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// StatusFileName is the directory snapshot a cluster persists into its
// StatusPath directory on every topology change, and the file
// `dractl cluster status -data-dir` reads offline.
const StatusFileName = "cluster.json"

// ReplicaView is one replica's standing within a region.
type ReplicaView struct {
	Node    string `json:"node"`
	Primary bool   `json:"primary,omitempty"`
	Alive   bool   `json:"alive"`
	// Applied is the replica's contiguous applied sequence; Lag is the
	// region sequence minus Applied (0 = fully caught up). Both are
	// zero for a dead (unreachable) node.
	Applied uint64 `json:"applied"`
	Lag     uint64 `json:"lag"`
}

// RegionView is one directory row.
type RegionView struct {
	ID       string        `json:"id"`
	Start    string        `json:"start"`
	End      string        `json:"end"`
	Epoch    uint64        `json:"epoch"`
	Seq      uint64        `json:"seq"`
	Replicas []ReplicaView `json:"replicas"`
}

// NodeView summarizes one node's membership.
type NodeView struct {
	ID        string `json:"id"`
	Alive     bool   `json:"alive"`
	Primaries int    `json:"primaries"`
	Backups   int    `json:"backups"`
}

// ClusterStatus is a point-in-time view of the region directory.
type ClusterStatus struct {
	AsOf     time.Time    `json:"as_of"`
	Replicas int          `json:"replicas"`
	Nodes    []NodeView   `json:"nodes"`
	Regions  []RegionView `json:"regions"`
}

// Status assembles the live directory view, probing each replica's
// applied sequence.
func (c *Cluster) Status() ClusterStatus {
	st := ClusterStatus{AsOf: time.Now(), Replicas: c.cfg.Replicas}
	primaries := make(map[string]int)
	backups := make(map[string]int)
	for _, e := range c.entries {
		e.mu.Lock()
		rv := RegionView{ID: e.id, Start: e.start, End: e.end, Epoch: e.epoch, Seq: e.seq}
		holders := e.holders()
		seq := e.seq
		e.mu.Unlock()
		for i, id := range holders {
			isPrimary := i == 0
			if isPrimary {
				primaries[id]++
			} else {
				backups[id]++
			}
			view := ReplicaView{Node: id, Primary: isPrimary}
			if ref := c.aliveRef(id); ref != nil {
				if applied, err := ref.AppliedSeq(rv.ID); err == nil {
					view.Alive = true
					view.Applied = applied
					if seq > applied {
						view.Lag = seq - applied
					}
				}
			}
			rv.Replicas = append(rv.Replicas, view)
		}
		st.Regions = append(st.Regions, rv)
	}
	c.mu.RLock()
	for _, id := range c.order {
		m := c.members[id]
		st.Nodes = append(st.Nodes, NodeView{
			ID:        id,
			Alive:     m.alive,
			Primaries: primaries[id],
			Backups:   backups[id],
		})
	}
	c.mu.RUnlock()
	return st
}

// PrimaryFor reports which region owns row and which node currently
// leads it — the hook `dractl cluster status -row` and the failover
// drill use to find the node to kill.
func (c *Cluster) PrimaryFor(row string) (region, node string) {
	e := c.entryFor(row)
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.id, e.primary
}

// HealthCheck is the hard readiness check a clustered portal registers:
// it fails when any region currently has no live primary, i.e. writes to
// that key span would stall. Backup lag does NOT fail this check — see
// LagCheck.
func (c *Cluster) HealthCheck() error {
	for _, e := range c.entries {
		e.mu.Lock()
		id, primary := e.id, e.primary
		e.mu.Unlock()
		if c.aliveRef(primary) == nil {
			return fmt.Errorf("region %s has no live primary", id)
		}
	}
	return nil
}

// LagCheck returns a *degraded* readiness check: it fails when any
// replica of a region with a healthy primary trails the acknowledged
// sequence by more than maxLag records (a dead replica counts as fully
// lagging). The portal stays in rotation — the primary serves — but
// readyz reports {"status":"degraded"} until the repair loop catches the
// replica up.
func (c *Cluster) LagCheck(maxLag uint64) func() error {
	return func() error {
		worst, worstRegion, worstNode := uint64(0), "", ""
		for _, e := range c.entries {
			e.mu.Lock()
			id, seq, backups := e.id, e.seq, append([]string(nil), e.backups...)
			e.mu.Unlock()
			for _, b := range backups {
				lag := seq // a dead or unreachable replica is fully behind
				if ref := c.aliveRef(b); ref != nil {
					if applied, err := ref.AppliedSeq(id); err == nil {
						lag = 0
						if seq > applied {
							lag = seq - applied
						}
					}
				}
				if lag > worst {
					worst, worstRegion, worstNode = lag, id, b
				}
			}
		}
		if worst > maxLag {
			return fmt.Errorf("replica %s of %s lags %d records (threshold %d)", worstNode, worstRegion, worst, maxLag)
		}
		return nil
	}
}

// persistStatus atomically writes the directory snapshot next to the
// coordinator's data (tmp + rename), so an offline `dractl cluster
// status` sees the last committed topology, never a torn file.
func (c *Cluster) persistStatus() {
	if c.cfg.StatusPath == "" {
		return
	}
	st := c.Status()
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return
	}
	path := c.cfg.StatusPath
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, path)
}

// ReadStatusFile loads a persisted directory snapshot. path may be the
// snapshot file itself or a directory containing StatusFileName.
func ReadStatusFile(path string) (ClusterStatus, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, StatusFileName)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return ClusterStatus{}, err
	}
	var st ClusterStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return ClusterStatus{}, fmt.Errorf("poolcluster: decoding %s: %w", path, err)
	}
	return st, nil
}

// Render formats the status as the operator-facing table dractl prints.
func (s ClusterStatus) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster status as of %s (replicas=%d)\n\n", s.AsOf.Format(time.RFC3339), s.Replicas)
	fmt.Fprintf(&b, "%-8s %-7s %-10s %-8s\n", "node", "alive", "primaries", "backups")
	for _, n := range s.Nodes {
		fmt.Fprintf(&b, "%-8s %-7v %-10d %-8d\n", n.ID, n.Alive, n.Primaries, n.Backups)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-12s %-24s %-6s %-8s %s\n", "region", "range", "epoch", "seq", "replicas (applied/lag)")
	for _, r := range s.Regions {
		rng := fmt.Sprintf("[%s, %s)", renderKey(r.Start), renderKey(r.End))
		var reps []string
		for _, rv := range r.Replicas {
			role := "backup"
			if rv.Primary {
				role = "primary"
			}
			state := fmt.Sprintf("%d/%d", rv.Applied, rv.Lag)
			if !rv.Alive {
				state = "dead"
			}
			reps = append(reps, fmt.Sprintf("%s=%s(%s)", rv.Node, role, state))
		}
		fmt.Fprintf(&b, "%-12s %-24s %-6d %-8d %s\n", r.ID, rng, r.Epoch, r.Seq, strings.Join(reps, " "))
	}
	return b.String()
}

// renderKey makes range boundaries printable (boundaries may be raw
// bytes from DefaultBoundaries).
func renderKey(k string) string {
	if k == "" {
		return "∅"
	}
	for _, r := range k {
		if r < 0x20 || r > 0x7e {
			return fmt.Sprintf("%q", k)
		}
	}
	return k
}
