package poolcluster

import (
	"context"
	"fmt"
	"time"
)

// Failover ordering (see DESIGN.md): when a node is declared dead, each
// region it owned promotes the live backup with the highest applied
// sequence, drops the dead node from the replica set, and seeds a
// replacement backup from the new primary. Zero acknowledged-write loss
// holds because every acknowledged record was (a) applied on the old
// primary and (b) durably journaled in the coordinator's outbox for
// every backup — including the one being promoted — so relay redelivery
// plus the repair loop close any gap the promotee had at promotion time.

// suspect marks a node dead (idempotently) and repairs ownership of
// every region it held. Called from the write path on a failed primary
// apply, from read routing, and from the repair loop's health probes.
func (c *Cluster) suspect(id string) {
	c.mu.Lock()
	m := c.members[id]
	if m == nil || !m.alive {
		c.mu.Unlock()
		return
	}
	m.alive = false
	c.mu.Unlock()
	mFailovers.Inc()
	for _, e := range c.entries {
		c.repairOwnership(e)
	}
	c.persistStatus()
}

// FailNode administratively declares a node dead and fails its regions
// over. Idempotent. Unlike a failure-detector verdict, an administrative
// fail quarantines the node: the repair loop will not auto-rejoin it
// even if it answers probes again.
func (c *Cluster) FailNode(id string) error {
	c.mu.Lock()
	m := c.members[id]
	if m == nil {
		c.mu.Unlock()
		return fmt.Errorf("poolcluster: unknown node %s", id)
	}
	m.quarantined = true
	c.mu.Unlock()
	c.suspect(id)
	return nil
}

// Rejoin readmits a previously failed node. Its table may be arbitrarily
// stale: it rejoins holding no regions and becomes eligible as a
// migration target and replacement backup; catch-up happens through
// snapshot seeding and the repair loop, never by trusting its stale
// state.
func (c *Cluster) Rejoin(id string) error {
	c.mu.Lock()
	m := c.members[id]
	if m == nil {
		c.mu.Unlock()
		return fmt.Errorf("poolcluster: unknown node %s", id)
	}
	m.alive = true
	m.quarantined = false
	c.mu.Unlock()
	// Top up any region running below its replica target now that a
	// candidate is available again.
	for _, e := range c.entries {
		c.repairOwnership(e)
	}
	c.persistStatus()
	return nil
}

// AddNode joins a new node to the cluster. It starts empty; call
// Rebalance to move regions onto it.
func (c *Cluster) AddNode(ref NodeRef) error {
	id := ref.ID()
	if id == "" {
		return fmt.Errorf("poolcluster: node with empty ID")
	}
	c.mu.Lock()
	if _, dup := c.members[id]; dup {
		c.mu.Unlock()
		return fmt.Errorf("poolcluster: duplicate node ID %s", id)
	}
	c.members[id] = &member{ref: ref, alive: true}
	c.order = append(c.order, id)
	c.mu.Unlock()
	for _, e := range c.entries {
		c.repairOwnership(e)
	}
	c.persistStatus()
	return nil
}

// RemoveNode drains a node gracefully: every region it leads is migrated
// to another live node (a clean, lossless handoff), then the node is
// marked dead so backup sets re-form without it.
func (c *Cluster) RemoveNode(id string) error {
	if c.anyRef(id) == nil {
		return fmt.Errorf("poolcluster: unknown node %s", id)
	}
	for _, e := range c.entries {
		e.mu.Lock()
		leads := e.primary == id
		region := e.id
		e.mu.Unlock()
		if !leads {
			continue
		}
		dst := c.pickTarget(region, id)
		if dst == "" {
			return fmt.Errorf("poolcluster: no target node to drain %s from %s", region, id)
		}
		if err := c.MigrateRegion(region, dst); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.members[id].quarantined = true
	c.mu.Unlock()
	c.suspect(id)
	return nil
}

// repairOwnership restores a region's invariants after a membership
// change: a live primary (promoting the most caught-up live backup when
// the primary is dead), no dead backups, and the replica set topped back
// up to the configured count with a snapshot-seeded replacement.
func (c *Cluster) repairOwnership(e *regionEntry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	changed := false
	if c.aliveRef(e.primary) == nil {
		if !c.promoteLocked(e) {
			// No live backup to promote: the region is unavailable
			// until one rejoins. Writes time out rather than accept
			// a lossy promotion from stale state.
			return
		}
		changed = true
	}
	var kept []string
	for _, b := range e.backups {
		if c.aliveRef(b) != nil {
			kept = append(kept, b)
		} else {
			changed = true
		}
	}
	e.backups = kept
	if c.topUpBackupsLocked(e) {
		changed = true
	}
	if changed {
		e.epoch++
	}
}

// promoteLocked promotes the live backup with the highest applied
// sequence to primary. Any live backup preserves zero-loss (every acked
// record is journaled for it); the most caught-up one minimizes the gap
// the relay must redeliver before new reads see their writes.
func (c *Cluster) promoteLocked(e *regionEntry) bool {
	best := ""
	var bestSeq uint64
	for _, b := range e.backups {
		ref := c.aliveRef(b)
		if ref == nil {
			continue
		}
		applied, err := ref.AppliedSeq(e.id)
		if err != nil {
			continue
		}
		if best == "" || applied > bestSeq {
			best, bestSeq = b, applied
		}
	}
	if best == "" {
		return false
	}
	var rest []string
	for _, b := range e.backups {
		if b != best {
			rest = append(rest, b)
		}
	}
	e.primary = best
	e.backups = rest
	return true
}

// topUpBackupsLocked seeds replacement backups until the replica set is
// back at the configured size (or candidates run out). The seed is a
// snapshot of the current primary; any suffix the primary itself is
// still missing (a fresh promotee waiting on relay redelivery) reaches
// the new backup through the repair loop once the primary has it.
func (c *Cluster) topUpBackupsLocked(e *regionEntry) bool {
	changed := false
	for 1+len(e.backups) < c.cfg.Replicas {
		cand := ""
		for _, id := range c.aliveIDs() {
			if !e.isHolder(id) {
				cand = id
				break
			}
		}
		if cand == "" {
			break
		}
		ref := c.aliveRef(cand)
		p := c.aliveRef(e.primary)
		if ref == nil || p == nil {
			break
		}
		kvs, snapSeq, err := p.Snapshot(e.id, e.start, e.end)
		if err != nil {
			break
		}
		if err := ref.Import(e.id, kvs, snapSeq); err != nil {
			break
		}
		e.backups = append(e.backups, cand)
		changed = true
	}
	return changed
}

// pickTarget chooses the live node (excluding `not`) leading the fewest
// regions — the migration destination for drains and rebalancing.
func (c *Cluster) pickTarget(region, not string) string {
	counts := c.primaryCounts()
	best := ""
	bestN := int(^uint(0) >> 1)
	for _, id := range c.aliveIDs() {
		if id == not {
			continue
		}
		if n := counts[id]; n < bestN {
			best, bestN = id, n
		}
	}
	_ = region
	return best
}

// primaryCounts tallies how many regions each node currently leads.
func (c *Cluster) primaryCounts() map[string]int {
	counts := make(map[string]int)
	for _, e := range c.entries {
		e.mu.Lock()
		counts[e.primary]++
		e.mu.Unlock()
	}
	return counts
}

// rejoinHealed probes every detector-suspected member and readmits the
// ones answering again — the automatic half of recovery from a transient
// partition or a restarted daemon. The probe is the node's own Status
// call, so a downed (Node.Down) or still-unreachable node keeps failing
// its probe and stays out, and quarantined members (administratively
// failed or drained) are never probed at all. Readmission goes through
// Rejoin: the node returns holding no regions and is never trusted for
// its stale state.
func (c *Cluster) rejoinHealed() {
	type probe struct {
		id  string
		ref NodeRef
	}
	var dead []probe
	c.mu.Lock()
	for id, m := range c.members {
		if !m.alive && !m.quarantined {
			dead = append(dead, probe{id: id, ref: m.ref})
		}
	}
	c.mu.Unlock()
	for _, p := range dead {
		if _, err := p.ref.Status(); err == nil {
			if c.Rejoin(p.id) == nil {
				mRejoins.Inc()
			}
		}
	}
}

// repairLoop is the anti-entropy pacemaker.
func (c *Cluster) repairLoop(interval time.Duration) {
	defer c.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.repairOnce()
		}
	}
}

// repairOnce walks every region once: probes holder health (feeding the
// failure detector), re-applies missing records to lagging live backups
// directly from their primary (idempotent — nodes dedupe by sequence),
// and reseeds backups whose gap outran the primary's bounded catch-up
// log. Returns the total remaining lag in records across all live
// replicas; zero means every live replica has applied every acknowledged
// write. Convergence deliberately does not depend on the relay alone:
// redelivery handles the common case, repair guarantees the bound.
func (c *Cluster) repairOnce() uint64 {
	c.rejoinHealed()
	var total, maxLag uint64
	for _, e := range c.entries {
		e.mu.Lock()
		region, primary, want := e.id, e.primary, e.seq
		backups := append([]string(nil), e.backups...)
		start, end := e.start, e.end
		e.mu.Unlock()

		p := c.aliveRef(primary)
		if p == nil {
			// Dead primary discovered outside the write path (e.g. no
			// writes flowing): promote now and re-read the entry.
			c.repairOwnership(e)
			e.mu.Lock()
			region, primary, want = e.id, e.primary, e.seq
			backups = append([]string(nil), e.backups...)
			e.mu.Unlock()
			if p = c.aliveRef(primary); p == nil {
				total += want // unavailable region: count it as lag
				continue
			}
		}
		pApplied, err := p.AppliedSeq(region)
		if err != nil {
			c.suspect(primary)
			total++
			continue
		}
		if pApplied < want {
			// The primary itself (a fresh promotee) is waiting on relay
			// redelivery of its gap.
			lag := want - pApplied
			total += lag
			if lag > maxLag {
				maxLag = lag
			}
		}
		for _, b := range backups {
			ref := c.aliveRef(b)
			if ref == nil {
				continue
			}
			bApplied, err := ref.AppliedSeq(region)
			if err != nil {
				c.suspect(b)
				total++
				continue
			}
			if bApplied >= want {
				continue
			}
			lag := want - bApplied
			total += lag
			if lag > maxLag {
				maxLag = lag
			}
			recs, complete, err := p.RecordsSince(region, bApplied)
			if err != nil {
				continue
			}
			if !complete {
				// The primary's log no longer reaches back: reseed.
				kvs, snapSeq, err := p.Snapshot(region, start, end)
				if err == nil {
					_ = ref.Import(region, kvs, snapSeq)
				}
				continue
			}
			for _, rec := range recs {
				if err := ref.Apply(context.Background(), rec); err != nil {
					break
				}
			}
		}
	}
	gMaxLag.Set(float64(maxLag))
	return total
}
