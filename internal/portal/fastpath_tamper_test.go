package portal

import (
	"strings"
	"testing"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/wfdef"
)

// flipCipherByte flips one byte inside the first encrypted execution
// result, tampering mid-cascade with a signed subtree.
func flipCipherByte(t *testing.T, doc *document.Document) {
	t.Helper()
	cv := doc.Root.Find("CipherValue")
	if cv == nil {
		t.Fatal("document has no CipherValue to tamper with")
	}
	b := []byte(cv.TextContent())
	if b[0] == 'A' {
		b[0] = 'B'
	} else {
		b[0] = 'A'
	}
	cv.SetText(string(b))
}

// TestPortalRejectsTamperAfterWarmCache stores a document (which verifies
// it, warming the verified-prefix cache), then tries to store a copy with
// one byte flipped mid-cascade: the portal must reject it even though
// every signature in it has a warm cache entry.
func TestPortalRejectsTamperAfterWarmCache(t *testing.T) {
	c := newCloud(t)
	doc := c.initial(t)
	if _, err := c.portal.StoreInitial(doc); err != nil {
		t.Fatal(err)
	}
	pid := doc.ProcessID()
	participant := wfdef.Fig9Participants["A"]
	cur, err := c.portal.Retrieve(participant, pid)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.agents["A"].Execute(cur, "A", aea.Inputs{"request": "req", "attachment": "a.pdf"}, now)
	if err != nil {
		t.Fatal(err)
	}
	// First store verifies and accepts, warming the cache for every
	// signature in the document.
	if _, err := c.portal.Store(out.Doc); err != nil {
		t.Fatal(err)
	}
	tampered := out.Doc.Clone()
	flipCipherByte(t, tampered)
	_, err = c.portal.Store(tampered)
	if err == nil {
		t.Fatal("portal accepted a tampered document on a warm cache")
	}
	if !strings.Contains(err.Error(), "rejecting document") {
		t.Fatalf("unexpected rejection cause: %v", err)
	}
	// The untampered document still stores fine afterwards.
	if _, err := c.portal.Store(out.Doc); err != nil {
		t.Fatalf("pristine document rejected after tamper attempt: %v", err)
	}
}

// TestPortalRejectsTamperedInitialDocument covers the StoreInitial path:
// a byte flipped in the designer-signed definition must be caught.
func TestPortalRejectsTamperedInitialDocument(t *testing.T) {
	c := newCloud(t)
	doc := c.initial(t)
	// Warm the cache with the pristine designer signature first.
	if _, err := doc.VerifyAll(c.env.Registry); err != nil {
		t.Fatal(err)
	}
	tampered := doc.Clone()
	wf := tampered.Root.Find("WorkflowDefinition")
	if wf == nil {
		t.Fatal("no WorkflowDefinition element")
	}
	wf.SetAttr("Injected", "true")
	if _, err := c.portal.StoreInitial(tampered); err == nil {
		t.Fatal("portal accepted a tampered initial document")
	} else if !strings.Contains(err.Error(), "rejecting initial document") {
		t.Fatalf("unexpected rejection cause: %v", err)
	}
}
