package portal

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/wfdef"
)

var now = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

type cloud struct {
	env     *testenv.Env
	table   *pool.Table
	portal  *Portal
	portal2 *Portal
	agents  map[string]*aea.AEA
}

func newCloud(t *testing.T) *cloud {
	t.Helper()
	env := testenv.Fig9(0)
	cluster, err := pool.NewCluster([]string{"rs1", "rs2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	table, err := CreateTable(cluster)
	if err != nil {
		t.Fatal(err)
	}
	agents := map[string]*aea.AEA{}
	for act, p := range wfdef.Fig9Participants {
		agents[act] = aea.New(env.KeyOf(p), env.Registry)
	}
	clock := func() time.Time { return now }
	return &cloud{
		env:     env,
		table:   table,
		portal:  New("portal-1", env.Registry, table, clock),
		portal2: New("portal-2", env.Registry, table, clock),
		agents:  agents,
	}
}

func (c *cloud) initial(t *testing.T) *document.Document {
	t.Helper()
	doc, err := document.New(wfdef.Fig9A(), c.env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// run executes the given activity by retrieving the current document from
// the portal, running the AEA and storing the result.
func (c *cloud) run(t *testing.T, processID, activity string, inputs aea.Inputs) []Notification {
	t.Helper()
	participant := wfdef.Fig9Participants[activity]
	doc, err := c.portal.Retrieve(participant, processID)
	if err != nil {
		t.Fatalf("retrieve for %s: %v", activity, err)
	}
	out, err := c.agents[activity].Execute(doc, activity, inputs, now)
	if err != nil {
		t.Fatalf("execute %s: %v", activity, err)
	}
	notes, err := c.portal.Store(out.Doc)
	if err != nil {
		t.Fatalf("store after %s: %v", activity, err)
	}
	return notes
}

func TestCloudLifecycle(t *testing.T) {
	c := newCloud(t)
	doc := c.initial(t)
	pid := doc.ProcessID()

	notes, err := c.portal.StoreInitial(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 || notes[0].Participant != wfdef.Fig9Participants["A"] || notes[0].Activity != "A" {
		t.Fatalf("initial notifications = %v", notes)
	}

	// Worklist for A's participant shows the new item.
	items, err := c.portal.Worklist(wfdef.Fig9Participants["A"])
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Activity != "A" || items[0].ProcessID != pid {
		t.Fatalf("worklist = %v", items)
	}

	notes = c.run(t, pid, "A", aea.Inputs{"request": "r"})
	// B1 and B2 are now enabled.
	acts := map[string]string{}
	for _, n := range notes {
		acts[n.Activity] = n.Participant
	}
	if len(notes) != 2 || acts["B1"] != wfdef.Fig9Participants["B1"] || acts["B2"] != wfdef.Fig9Participants["B2"] {
		t.Fatalf("notes after A = %v", notes)
	}
	// A's worklist is empty again.
	items, _ = c.portal.Worklist(wfdef.Fig9Participants["A"])
	if len(items) != 0 {
		t.Fatalf("stale worklist for A: %v", items)
	}

	c.run(t, pid, "B1", aea.Inputs{"techReview": "ok"})
	// C is an AND-join: not yet enabled.
	if enabled, _, _ := c.portal.Enabled(pid); strings.Join(enabled, ",") != "B2" {
		t.Fatalf("enabled after B1 = %v", enabled)
	}
	c.run(t, pid, "B2", aea.Inputs{"budgetReview": "ok"})
	if enabled, _, _ := c.portal.Enabled(pid); strings.Join(enabled, ",") != "C" {
		t.Fatalf("enabled after B2 = %v", enabled)
	}
	c.run(t, pid, "C", aea.Inputs{"summary": "s"})
	c.run(t, pid, "D", aea.Inputs{"accept": "true"})

	state, err := c.portal.State(pid)
	if err != nil || state != "completed" {
		t.Fatalf("state = %q, %v", state, err)
	}
	if ids := c.portal.ProcessIDs("completed"); len(ids) != 1 || ids[0] != pid {
		t.Fatalf("completed ids = %v", ids)
	}
	if ids := c.portal.ProcessIDs("running"); len(ids) != 0 {
		t.Fatalf("running ids = %v", ids)
	}
	// Final document verifies end to end.
	final, err := c.portal.Retrieve(wfdef.Fig9Participants["A"], pid)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := final.VerifyAll(c.env.Registry); err != nil || n != 6 {
		t.Fatalf("final VerifyAll = %d, %v", n, err)
	}
}

func TestSecondPortalSeesSharedPool(t *testing.T) {
	c := newCloud(t)
	doc := c.initial(t)
	if _, err := c.portal.StoreInitial(doc); err != nil {
		t.Fatal(err)
	}
	// A different portal over the same table serves the instance.
	got, err := c.portal2.Retrieve(wfdef.Fig9Participants["A"], doc.ProcessID())
	if err != nil {
		t.Fatal(err)
	}
	if got.ProcessID() != doc.ProcessID() {
		t.Fatal("portal-2 returned wrong instance")
	}
	items, err := c.portal2.Worklist(wfdef.Fig9Participants["A"])
	if err != nil || len(items) != 1 {
		t.Fatalf("portal-2 worklist = %v, %v", items, err)
	}
}

func TestBranchDocumentsMergeInPool(t *testing.T) {
	// B1 and B2 both execute against the post-A document (true parallel
	// branches); the portal must merge their stores.
	c := newCloud(t)
	doc := c.initial(t)
	pid := doc.ProcessID()
	c.portal.StoreInitial(doc)
	c.run(t, pid, "A", aea.Inputs{"request": "r"})

	postA, _ := c.portal.Retrieve(wfdef.Fig9Participants["B1"], pid)
	outB1, err := c.agents["B1"].Execute(postA.Clone(), "B1", aea.Inputs{"techReview": "x"}, now)
	if err != nil {
		t.Fatal(err)
	}
	outB2, err := c.agents["B2"].Execute(postA.Clone(), "B2", aea.Inputs{"budgetReview": "y"}, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.portal.Store(outB1.Doc); err != nil {
		t.Fatal(err)
	}
	notes, err := c.portal.Store(outB2.Doc)
	if err != nil {
		t.Fatal(err)
	}
	// After the merge, C is enabled.
	found := false
	for _, n := range notes {
		if n.Activity == "C" {
			found = true
		}
	}
	if !found {
		t.Fatalf("C not notified after branch merge: %v", notes)
	}
	stored, _ := c.portal.Retrieve(wfdef.Fig9Participants["C"], pid)
	if len(stored.FinalCERs()) != 3 {
		t.Fatalf("merged CERs = %d, want 3", len(stored.FinalCERs()))
	}
}

func TestAuthenticationRequired(t *testing.T) {
	c := newCloud(t)
	doc := c.initial(t)
	c.portal.StoreInitial(doc)
	if _, err := c.portal.Retrieve("mallory@evil", doc.ProcessID()); !errors.Is(err, ErrNotAuthenticated) {
		t.Fatalf("unauthenticated retrieve: %v", err)
	}
	if _, err := c.portal.Worklist("mallory@evil"); !errors.Is(err, ErrNotAuthenticated) {
		t.Fatalf("unauthenticated worklist: %v", err)
	}
}

func TestStoreRejectsTamperAndReplay(t *testing.T) {
	c := newCloud(t)
	doc := c.initial(t)
	if _, err := c.portal.StoreInitial(doc); err != nil {
		t.Fatal(err)
	}
	// Replayed initial document.
	if _, err := c.portal.StoreInitial(doc); err == nil {
		t.Fatal("replayed initial accepted")
	}
	// Tampered document.
	bad := doc.Clone()
	bad.WorkflowElement().SetAttr("Name", "evil")
	if _, err := c.portal.Store(bad); err == nil {
		t.Fatal("tampered document stored")
	}
	if _, err := c.portal.StoreInitial(bad); err == nil {
		t.Fatal("tampered initial stored")
	}
}

func TestUnknownProcessErrors(t *testing.T) {
	c := newCloud(t)
	if _, err := c.portal.Retrieve(wfdef.Fig9Participants["A"], "ghost"); !errors.Is(err, ErrUnknownProcess) {
		t.Fatalf("retrieve ghost: %v", err)
	}
	if _, err := c.portal.State("ghost"); !errors.Is(err, ErrUnknownProcess) {
		t.Fatalf("state ghost: %v", err)
	}
	if _, _, err := c.portal.Enabled("ghost"); !errors.Is(err, ErrUnknownProcess) {
		t.Fatalf("enabled ghost: %v", err)
	}
}

func TestManyInstancesWorklistIsolation(t *testing.T) {
	c := newCloud(t)
	var pids []string
	for i := 0; i < 5; i++ {
		doc := c.initial(t)
		if _, err := c.portal.StoreInitial(doc); err != nil {
			t.Fatal(err)
		}
		pids = append(pids, doc.ProcessID())
	}
	// Advance two instances past A.
	for _, pid := range pids[:2] {
		c.run(t, pid, "A", aea.Inputs{"request": fmt.Sprintf("r-%s", pid)})
	}
	itemsA, _ := c.portal.Worklist(wfdef.Fig9Participants["A"])
	if len(itemsA) != 3 {
		t.Fatalf("A worklist = %d items, want 3", len(itemsA))
	}
	itemsB1, _ := c.portal.Worklist(wfdef.Fig9Participants["B1"])
	if len(itemsB1) != 2 {
		t.Fatalf("B1 worklist = %d items, want 2", len(itemsB1))
	}
}

func TestTemplateCatalog(t *testing.T) {
	c := newCloud(t)
	def := wfdef.Fig9A()
	tpl, err := document.SignTemplate(def, c.env.KeyOf("designer@acme"))
	if err != nil {
		t.Fatal(err)
	}
	name, err := c.portal.StoreTemplate(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if name != "fig9-review" {
		t.Fatalf("name = %q", name)
	}
	// Listed with its designer.
	cat := c.portal.Templates()
	if cat["fig9-review"] != "designer@acme" {
		t.Fatalf("catalog = %v", cat)
	}
	// Fetch re-verifies and parses.
	got, _, err := c.portal2.Template(wfdef.Fig9Participants["A"], "fig9-review")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != def.Name || len(got.Activities) != 5 {
		t.Fatalf("template def = %+v", got)
	}
	// Unknown name and unauthenticated caller.
	if _, _, err := c.portal.Template(wfdef.Fig9Participants["A"], "nope"); err == nil {
		t.Fatal("unknown template fetched")
	}
	if _, _, err := c.portal.Template("mallory@evil", "fig9-review"); err == nil {
		t.Fatal("unauthenticated template fetch")
	}
	// Tampered templates are rejected at upload.
	forged := tpl.Clone()
	forged.Find("Activity").SetAttr("Participant", "mallory@evil")
	if _, err := c.portal.StoreTemplate(forged); err == nil {
		t.Fatal("tampered template stored")
	}
	// Templates signed by someone other than the named designer rejected.
	imposter, err := document.SignTemplate(def, c.env.KeyOf("designer@acme"))
	if err != nil {
		t.Fatal(err)
	}
	_ = imposter
	wrong := *def
	wrong.Designer = wfdef.Fig9Participants["A"]
	if _, err := document.SignTemplate(&wrong, c.env.KeyOf("designer@acme")); err == nil {
		t.Fatal("SignTemplate with mismatched designer succeeded")
	}
	// Templates do not pollute process listings or statistics.
	if ids := c.portal.ProcessIDs(""); len(ids) != 0 {
		t.Fatalf("templates leaked into process ids: %v", ids)
	}
}

func TestPortalRestartResilience(t *testing.T) {
	// The paper demands WfMSs "durable and resilient to any failures":
	// kill the portal mid-process (drop it), bring up a fresh one over the
	// same pool, and the instance continues seamlessly — all state lives
	// in the self-protecting documents, none in the portal.
	c := newCloud(t)
	doc := c.initial(t)
	pid := doc.ProcessID()
	c.portal.StoreInitial(doc)
	c.run(t, pid, "A", aea.Inputs{"request": "r"})
	c.run(t, pid, "B1", aea.Inputs{"techReview": "ok"})

	// "Restart": a brand-new portal instance over the same table.
	reborn := New("portal-reborn", c.env.Registry, c.table, nil)
	items, err := reborn.Worklist(wfdef.Fig9Participants["B2"])
	if err != nil || len(items) != 1 || items[0].Activity != "B2" {
		t.Fatalf("reborn worklist = %v, %v", items, err)
	}
	cur, err := reborn.Retrieve(wfdef.Fig9Participants["B2"], pid)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.agents["B2"].Execute(cur, "B2", aea.Inputs{"budgetReview": "ok"}, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reborn.Store(out.Doc); err != nil {
		t.Fatal(err)
	}
	// Finish through the reborn portal.
	for _, s := range []struct {
		act    string
		inputs aea.Inputs
	}{
		{"C", aea.Inputs{"summary": "s"}},
		{"D", aea.Inputs{"accept": "true"}},
	} {
		cur, err := reborn.Retrieve(wfdef.Fig9Participants[s.act], pid)
		if err != nil {
			t.Fatal(err)
		}
		o, err := c.agents[s.act].Execute(cur, s.act, s.inputs, now)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reborn.Store(o.Doc); err != nil {
			t.Fatal(err)
		}
	}
	state, err := reborn.State(pid)
	if err != nil || state != "completed" {
		t.Fatalf("state after restart = %q, %v", state, err)
	}
}
