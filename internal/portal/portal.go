// Package portal implements the portal servers of the DRA4WfMS cloud
// system (Figure 7 of the paper). A portal authenticates users, serves
// them copies of DRA4WfMS documents from the document pool, accepts the
// documents their AEAs produce, and notifies the participants of the next
// activities. Portals hold no secret process data — documents are
// self-protecting — and several portals can serve the same pool
// concurrently, which is what makes the tier horizontally scalable.
//
// Pool layout (one table, three column families):
//
//	row key            = process id
//	doc:content        = canonical DRA4WfMS document bytes
//	meta:definition    = workflow definition name
//	meta:state         = "running" | "completed"
//	meta:cers          = number of final CERs (decimal)
//	idx:<participant>  = comma-separated enabled activities for the
//	                     participant (worklist index)
package portal

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dra4wfms/internal/document"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/telemetry"
	"dra4wfms/internal/trace"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmltree"
)

// Runtime telemetry: per-operation latency histograms and the
// notification fan-out counter. Portals are the paper's horizontally
// scaled tier, so their request latency is the first scalability signal.
var (
	tel            = telemetry.Default()
	mNotifications = tel.Counter("portal_notifications_total")
)

// Column families of the documents table.
var Families = []pool.FamilySpec{
	{Name: "doc", MaxVersions: 3},
	{Name: "meta", MaxVersions: 1},
	{Name: "idx", MaxVersions: 1},
}

// TableName is the pool table portals use.
const TableName = "dra4wfms_documents"

// CreateTable declares the documents table on a cluster.
func CreateTable(c *pool.Cluster) (*pool.Table, error) {
	return c.CreateTable(TableName, Families...)
}

// Errors.
var (
	// ErrUnknownProcess: no document stored under the process id.
	ErrUnknownProcess = errors.New("portal: unknown process instance")
	// ErrNotAuthenticated: the caller's principal is not registered.
	ErrNotAuthenticated = errors.New("portal: unknown principal")
)

// Notification tells a participant an activity awaits them.
type Notification struct {
	Participant string
	ProcessID   string
	Activity    string
}

// WorkItem is one entry of a participant's TO-DO list.
type WorkItem struct {
	ProcessID  string
	Definition string
	Activity   string
}

// Portal is one portal server. Portals sharing a table coordinate only
// through it (plus a per-portal mutex to serialize local read-modify-write
// cycles); stored CER sets are grow-only, so concurrent stores converge by
// re-merging.
type Portal struct {
	// ID names the portal (for logs and notifications).
	ID string
	// Registry authenticates principals and verifies document signatures.
	Registry *pki.Registry
	// Table is the shared documents table: a single-process *pool.Table
	// or a clustered poolcluster.Session — the portal cannot tell them
	// apart.
	Table pool.DocTable
	// Clock supplies meta timestamps (defaults to time.Now).
	Clock func() time.Time
	// OnNotify, when set, receives every notification produced by Store
	// and StoreInitial (after the document is durably persisted) — the
	// paper's "notify the subsequent participants" hook. It is called
	// outside the portal's lock; implementations deliver asynchronously.
	OnNotify func(Notification)
	// OnNotifyCtx is OnNotify carrying the trace context of the store
	// that produced the notification, so asynchronous webhook deliveries
	// continue the originating trace. When both hooks are set,
	// OnNotifyCtx wins.
	OnNotifyCtx func(context.Context, Notification)

	mu sync.Mutex
}

// New creates a portal server.
func New(id string, reg *pki.Registry, table pool.DocTable, clock func() time.Time) *Portal {
	if clock == nil {
		clock = time.Now
	}
	return &Portal{ID: id, Registry: reg, Table: table, Clock: clock}
}

// Authenticate verifies that the principal is registered and unrevoked.
func (p *Portal) Authenticate(principal string) error {
	if _, err := p.Registry.Certificate(principal); err != nil {
		return fmt.Errorf("%w: %v", ErrNotAuthenticated, err)
	}
	return nil
}

// Store verifies a document produced by an AEA (or a TFC server), merges
// it with the stored copy of the same process instance, persists the
// result, refreshes the worklist index, and returns notifications for the
// participants of the now-enabled activities.
func (p *Portal) Store(doc *document.Document) ([]Notification, error) {
	return p.StoreCtx(context.Background(), doc)
}

// StoreCtx is Store carrying the caller's trace context: inside a
// sampled distributed trace the verification/merge/persist work lands as
// a portal-tier span (with the process ID and CER count as attributes),
// pool writes nest under it, and notifications dispatched to OnNotifyCtx
// continue the same trace through the webhook relay.
func (p *Portal) StoreCtx(ctx context.Context, doc *document.Document) ([]Notification, error) {
	ctx, span := tel.StartSpanCtx(ctx, "portal_store_seconds")
	defer span.End()
	span.Trace().SetAttr("process", doc.ProcessID())
	if nsigs, err := doc.VerifyAllCtx(ctx, p.Registry); err != nil {
		span.Trace().SetStatus("error")
		return nil, fmt.Errorf("portal: rejecting document (%d signatures verified before failure): %w", nsigs, err)
	}
	notes, err := func() ([]Notification, error) {
		p.mu.Lock()
		defer p.mu.Unlock()
		merged := doc
		if existing, err := p.retrieve(ctx, doc.ProcessID()); err == nil {
			merged, err = document.Merge(existing, doc)
			if err != nil {
				return nil, err
			}
		} else if !errors.Is(err, ErrUnknownProcess) {
			return nil, err
		}
		span.Trace().SetAttr("cers", strconv.Itoa(len(merged.FinalCERs())))
		return p.persist(ctx, merged)
	}()
	if err != nil {
		span.Trace().SetStatus("error")
		return nil, err
	}
	p.dispatch(ctx, notes)
	return notes, nil
}

// dispatch fans notifications out to OnNotifyCtx/OnNotify. Must be
// called without p.mu.
func (p *Portal) dispatch(ctx context.Context, notes []Notification) {
	mNotifications.Add(int64(len(notes)))
	switch {
	case p.OnNotifyCtx != nil:
		for _, n := range notes {
			p.OnNotifyCtx(ctx, n)
		}
	case p.OnNotify != nil:
		for _, n := range notes {
			p.OnNotify(n)
		}
	}
}

// persist writes the merged document and its metadata/index and computes
// notifications. Caller holds p.mu.
func (p *Portal) persist(ctx context.Context, doc *document.Document) ([]Notification, error) {
	def, err := doc.Definition()
	if err != nil {
		return nil, err
	}
	enabled, completed, err := document.Enabled(def, doc)
	if err != nil {
		return nil, err
	}
	row := doc.ProcessID()
	if err := p.Table.PutCtx(ctx, row, "doc", "content", doc.Bytes()); err != nil {
		return nil, err
	}
	state := "running"
	if completed {
		state = "completed"
	}
	p.Table.PutCtx(ctx, row, "meta", "definition", []byte(def.Name))
	p.Table.PutCtx(ctx, row, "meta", "state", []byte(state))
	p.Table.PutCtx(ctx, row, "meta", "cers", []byte(strconv.Itoa(len(doc.FinalCERs()))))
	p.Table.PutCtx(ctx, row, "meta", "updated", []byte(p.Clock().UTC().Format(time.RFC3339Nano)))

	// Rebuild the worklist index: one idx cell per assignee with their
	// enabled activities; stale cells from prior states are deleted.
	// Fixed assignments index under the participant ID; role-based
	// activities index under "role:<role>" so any role holder's worklist
	// query finds them.
	byParticipant := map[string][]string{}
	for _, act := range enabled {
		a := def.Activity(act)
		if a == nil {
			return nil, fmt.Errorf("portal: enabled activity %q not in definition", act)
		}
		key := a.Participant
		if key == "" {
			key = rolePrefix + a.Role
		}
		byParticipant[key] = append(byParticipant[key], act)
	}
	for _, kv := range p.Table.GetRow(row) {
		if kv.Family == "idx" {
			if _, still := byParticipant[kv.Qualifier]; !still {
				p.Table.Delete(row, "idx", kv.Qualifier)
			}
		}
	}
	var notes []Notification
	for participant, acts := range byParticipant {
		sort.Strings(acts)
		p.Table.PutCtx(ctx, row, "idx", participant, []byte(strings.Join(acts, ",")))
		for _, a := range acts {
			notes = append(notes, Notification{Participant: participant, ProcessID: row, Activity: a})
		}
	}
	sort.Slice(notes, func(i, j int) bool {
		if notes[i].Participant != notes[j].Participant {
			return notes[i].Participant < notes[j].Participant
		}
		return notes[i].Activity < notes[j].Activity
	})
	return notes, nil
}

// StoreInitial verifies and stores a freshly designed initial document,
// starting the process instance. It fails if the instance already exists
// (process ids are unique; re-posting an initial document is a replay).
func (p *Portal) StoreInitial(doc *document.Document) ([]Notification, error) {
	return p.StoreInitialCtx(context.Background(), doc)
}

// StoreInitialCtx is StoreInitial carrying the caller's trace context.
// Besides the portal-tier span, it binds the new workflow instance ID to
// the trace ID in the process trace collector, so the whole cascade's
// journey is queryable by either handle (GET /v1/traces?process=...).
func (p *Portal) StoreInitialCtx(ctx context.Context, doc *document.Document) ([]Notification, error) {
	ctx, span := tel.StartSpanCtx(ctx, "portal_store_initial_seconds")
	defer span.End()
	span.Trace().SetAttr("process", doc.ProcessID())
	if sc, ok := trace.FromContext(ctx); ok {
		trace.Default().BindInstance(doc.ProcessID(), sc.TraceID)
	}
	if nsigs, err := doc.VerifyAllCtx(ctx, p.Registry); err != nil {
		span.Trace().SetStatus("error")
		return nil, fmt.Errorf("portal: rejecting initial document (%d signatures verified before failure): %w", nsigs, err)
	}
	notes, err := func() ([]Notification, error) {
		p.mu.Lock()
		defer p.mu.Unlock()
		if _, ok := p.Table.GetCtx(ctx, doc.ProcessID(), "doc", "content"); ok {
			return nil, fmt.Errorf("portal: process %s already exists (replayed initial document?)", doc.ProcessID())
		}
		return p.persist(ctx, doc)
	}()
	if err != nil {
		span.Trace().SetStatus("error")
		return nil, err
	}
	p.dispatch(ctx, notes)
	return notes, nil
}

// Retrieve returns a copy of the stored document for the authenticated
// principal. Confidentiality does not depend on this check — documents are
// element-wise encrypted — but unauthenticated scraping is still refused.
func (p *Portal) Retrieve(principal, processID string) (*document.Document, error) {
	return p.RetrieveCtx(context.Background(), principal, processID)
}

// RetrieveCtx is Retrieve carrying the caller's trace context (see
// StoreCtx).
func (p *Portal) RetrieveCtx(ctx context.Context, principal, processID string) (*document.Document, error) {
	ctx, span := tel.StartSpanCtx(ctx, "portal_retrieve_seconds")
	defer span.End()
	span.Trace().SetAttr("process", processID)
	if err := p.Authenticate(principal); err != nil {
		span.Trace().SetStatus("error")
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.retrieve(ctx, processID)
}

func (p *Portal) retrieve(ctx context.Context, processID string) (*document.Document, error) {
	raw, ok := p.Table.GetCtx(ctx, processID, "doc", "content")
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownProcess, processID)
	}
	return document.Parse(raw)
}

// rolePrefix namespaces role-based worklist index cells.
const rolePrefix = "role:"

// Worklist returns the participant's TO-DO list across all running process
// instances — activities assigned to them directly plus activities
// assigned to any role their registered identity holds — sorted by process
// id then activity.
func (p *Portal) Worklist(principal string) ([]WorkItem, error) {
	return p.WorklistCtx(context.Background(), principal)
}

// WorklistCtx is Worklist carrying the caller's trace context (see
// StoreCtx).
func (p *Portal) WorklistCtx(ctx context.Context, principal string) ([]WorkItem, error) {
	ctx, span := tel.StartSpanCtx(ctx, "portal_worklist_seconds")
	defer span.End()
	if err := p.Authenticate(principal); err != nil {
		span.Trace().SetStatus("error")
		return nil, err
	}
	id, err := p.Registry.Identity(principal)
	if err != nil {
		return nil, err
	}
	match := func(qualifier string) bool {
		if qualifier == principal {
			return true
		}
		if strings.HasPrefix(qualifier, rolePrefix) {
			return id.HasRole(strings.TrimPrefix(qualifier, rolePrefix))
		}
		return false
	}
	var items []WorkItem
	for _, kv := range p.Table.ScanCtx(ctx, pool.ScanOptions{Family: "idx"}) {
		if !match(kv.Qualifier) {
			continue
		}
		defName, _ := p.Table.GetCtx(ctx, kv.Row, "meta", "definition")
		for _, act := range strings.Split(string(kv.Value), ",") {
			if act == "" {
				continue
			}
			items = append(items, WorkItem{
				ProcessID:  kv.Row,
				Definition: string(defName),
				Activity:   act,
			})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].ProcessID != items[j].ProcessID {
			return items[i].ProcessID < items[j].ProcessID
		}
		return items[i].Activity < items[j].Activity
	})
	return items, nil
}

// ProcessIDs lists stored process instances, optionally filtered by state
// ("running", "completed", or "" for all).
func (p *Portal) ProcessIDs(state string) []string {
	var ids []string
	for _, kv := range p.Table.Scan(pool.ScanOptions{Family: "meta"}) {
		if kv.Qualifier != "state" {
			continue
		}
		if state != "" && string(kv.Value) != state {
			continue
		}
		ids = append(ids, kv.Row)
	}
	sort.Strings(ids)
	return ids
}

// State returns "running" or "completed" for a process instance.
func (p *Portal) State(processID string) (string, error) {
	v, ok := p.Table.Get(processID, "meta", "state")
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownProcess, processID)
	}
	return string(v), nil
}

// --- workflow template catalog ---------------------------------------------

// templateRowPrefix namespaces catalog rows away from process instances.
const templateRowPrefix = "tpl#"

// StoreTemplate verifies a designer-signed workflow template and files it
// in the catalog under its definition name — the paper's "prepared by the
// system or uploaded by the user" distribution path. Re-storing a name
// overwrites the previous template (the newest designer signature wins).
func (p *Portal) StoreTemplate(tpl *xmltree.Node) (string, error) {
	def, err := document.VerifyTemplate(tpl, p.Registry)
	if err != nil {
		return "", fmt.Errorf("portal: rejecting template: %w", err)
	}
	row := templateRowPrefix + def.Name
	if err := p.Table.Put(row, "doc", "template", tpl.Canonical()); err != nil {
		return "", err
	}
	p.Table.Put(row, "meta", "designer", []byte(def.Designer))
	return def.Name, nil
}

// Template fetches and re-verifies a cataloged template by name.
func (p *Portal) Template(principal, name string) (*wfdef.Definition, *xmltree.Node, error) {
	if err := p.Authenticate(principal); err != nil {
		return nil, nil, err
	}
	raw, ok := p.Table.Get(templateRowPrefix+name, "doc", "template")
	if !ok {
		return nil, nil, fmt.Errorf("portal: no template %q", name)
	}
	tpl, err := xmltree.ParseBytes(raw)
	if err != nil {
		return nil, nil, err
	}
	def, err := document.VerifyTemplate(tpl, p.Registry)
	if err != nil {
		return nil, nil, fmt.Errorf("portal: stored template %q no longer verifies: %w", name, err)
	}
	return def, tpl, nil
}

// Templates lists the catalog: definition name → designer.
func (p *Portal) Templates() map[string]string {
	out := map[string]string{}
	for _, kv := range p.Table.Scan(pool.ScanOptions{Prefix: templateRowPrefix, Family: "meta"}) {
		if kv.Qualifier == "designer" {
			out[strings.TrimPrefix(kv.Row, templateRowPrefix)] = string(kv.Value)
		}
	}
	return out
}

// Enabled recomputes the enabled activities of a stored instance.
func (p *Portal) Enabled(processID string) ([]string, bool, error) {
	p.mu.Lock()
	doc, err := p.retrieve(context.Background(), processID)
	p.mu.Unlock()
	if err != nil {
		return nil, false, err
	}
	def, err := doc.Definition()
	if err != nil {
		return nil, false, err
	}
	return document.Enabled(def, doc)
}
