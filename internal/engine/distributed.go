package engine

import (
	"fmt"
	"sort"
	"sync"

	"dra4wfms/internal/wfdef"
)

// Cluster is the distributed engine-based WfMS of Figure 1B: several
// engines at different sites, each responsible for a subset of the
// activities. A process instance lives on exactly one engine at a time
// (single-owner coherence); when control flow reaches an activity assigned
// to another engine, the whole instance state migrates there over the
// network. Migration count and per-engine execution counts are the
// observable costs the paper's scalability argument rests on.
type Cluster struct {
	mu sync.Mutex
	// engines by ID.
	engines map[string]*Engine
	// assignment maps each activity ID to the engine responsible for it.
	assignment map[string]string
	// owner maps instance ID to the engine currently holding it.
	owner map[string]string
	// migrations counts instance transfers between engines.
	migrations int
	// executions counts activities run per engine.
	executions map[string]int
	// migratedBytes estimates the state volume shipped between sites.
	migratedBytes int
}

// NewCluster builds a distributed WfMS from engines and an activity →
// engine-ID assignment. Every engine must have the definitions deployed
// before instances are created.
func NewCluster(engines []*Engine, assignment map[string]string) (*Cluster, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("engine: cluster needs at least one engine")
	}
	c := &Cluster{
		engines:    map[string]*Engine{},
		assignment: assignment,
		owner:      map[string]string{},
		executions: map[string]int{},
	}
	for _, e := range engines {
		c.engines[e.ID] = e
	}
	for act, eid := range assignment {
		if _, ok := c.engines[eid]; !ok {
			return nil, fmt.Errorf("engine: activity %s assigned to unknown engine %s", act, eid)
		}
	}
	return c, nil
}

// Deploy registers the definition with every engine in the cluster.
func (c *Cluster) Deploy(def *wfdef.Definition) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.engines {
		if err := e.Deploy(def); err != nil {
			return err
		}
	}
	return nil
}

// CreateInstance starts an instance on the engine owning the first initial
// activity.
func (c *Cluster) CreateInstance(defName string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Find the home engine via the definition's initial activities.
	var home *Engine
	for _, e := range c.engines {
		if def, ok := e.defs[defName]; ok {
			init := def.InitialActivities()
			if len(init) == 0 {
				return "", fmt.Errorf("engine: definition %s has no initial activity", defName)
			}
			home = c.engines[c.assignment[init[0]]]
			break
		}
	}
	if home == nil {
		return "", fmt.Errorf("%w: %s", ErrUnknownDefinition, defName)
	}
	id, err := home.CreateInstance(defName)
	if err != nil {
		return "", err
	}
	c.owner[id] = home.ID
	return id, nil
}

// Execute runs an activity, migrating the instance to the responsible
// engine first when necessary.
func (c *Cluster) Execute(instanceID, activity, participant string, inputs map[string]string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ownerID, ok := c.owner[instanceID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownInstance, instanceID)
	}
	targetID, ok := c.assignment[activity]
	if !ok {
		return nil, fmt.Errorf("engine: activity %s not assigned to any engine", activity)
	}
	if targetID != ownerID {
		if err := c.migrateLocked(instanceID, ownerID, targetID); err != nil {
			return nil, err
		}
	}
	next, err := c.engines[targetID].Execute(instanceID, activity, participant, inputs)
	if err != nil {
		return nil, err
	}
	c.executions[targetID]++
	return next, nil
}

// migrateLocked moves the instance state between engines. Caller holds c.mu.
func (c *Cluster) migrateLocked(instanceID, fromID, toID string) error {
	from, to := c.engines[fromID], c.engines[toID]
	from.mu.Lock()
	in, ok := from.instances[instanceID]
	if !ok {
		from.mu.Unlock()
		return fmt.Errorf("%w: %s (owner %s lost it)", ErrUnknownInstance, instanceID, fromID)
	}
	delete(from.instances, instanceID)
	from.mu.Unlock()

	// Estimate the shipped state size (values + history).
	size := 0
	for k, v := range in.Values {
		size += len(k) + len(v)
	}
	for _, s := range in.History {
		size += len(s.Activity) + len(s.Participant) + 16
		for k, v := range s.Values {
			size += len(k) + len(v)
		}
	}

	to.mu.Lock()
	to.instances[instanceID] = in
	to.mu.Unlock()

	c.owner[instanceID] = toID
	c.migrations++
	c.migratedBytes += size
	return nil
}

// Owner returns the engine currently holding the instance.
func (c *Cluster) Owner(instanceID string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	o, ok := c.owner[instanceID]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownInstance, instanceID)
	}
	return o, nil
}

// Migrations returns the number of instance transfers performed.
func (c *Cluster) Migrations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.migrations
}

// MigratedBytes returns the estimated state volume shipped between sites.
func (c *Cluster) MigratedBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.migratedBytes
}

// Executions returns activity-execution counts per engine ID.
func (c *Cluster) Executions() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[string]int{}
	for k, v := range c.executions {
		out[k] = v
	}
	return out
}

// Instance fetches the instance snapshot from its current owner.
func (c *Cluster) Instance(instanceID string) (*Instance, error) {
	c.mu.Lock()
	ownerID, ok := c.owner[instanceID]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownInstance, instanceID)
	}
	return c.engines[ownerID].Instance(instanceID)
}

// EngineIDs lists the cluster's engines, sorted.
func (c *Cluster) EngineIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.engines))
	for id := range c.engines {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
