package engine

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dra4wfms/internal/wfdef"
)

var base = time.Date(2026, 7, 6, 14, 0, 0, 0, time.UTC)

func clock() func() time.Time {
	t := base
	return func() time.Time { t = t.Add(time.Second); return t }
}

func p(act string) string { return wfdef.Fig9Participants[act] }

// runFig9 executes the Figure 9A process on an engine, looping once.
func runFig9(t *testing.T, e *Engine) string {
	t.Helper()
	if err := e.Deploy(wfdef.Fig9A()); err != nil {
		t.Fatal(err)
	}
	id, err := e.CreateInstance("fig9-review")
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		act    string
		inputs map[string]string
	}{
		{"A", map[string]string{"request": "r"}},
		{"B1", map[string]string{"techReview": "ok"}},
		{"B2", map[string]string{"budgetReview": "ok"}},
		{"C", map[string]string{"summary": "s"}},
		{"D", map[string]string{"accept": "false"}}, // loop back
		{"A", map[string]string{"request": "r2"}},
		{"B1", map[string]string{"techReview": "ok"}},
		{"B2", map[string]string{"budgetReview": "ok"}},
		{"C", map[string]string{"summary": "s2"}},
		{"D", map[string]string{"accept": "true"}},
	}
	for _, s := range steps {
		if _, err := e.Execute(id, s.act, p(s.act), s.inputs); err != nil {
			t.Fatalf("execute %s: %v", s.act, err)
		}
	}
	return id
}

func TestCentralizedFullRun(t *testing.T) {
	e := New("engine-1", clock())
	id := runFig9(t, e)
	in, err := e.Instance(id)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Completed {
		t.Fatal("instance not completed")
	}
	if len(in.History) != 10 {
		t.Fatalf("history = %d steps", len(in.History))
	}
	if in.History[9].Activity != "D" || in.History[9].Iteration != 1 {
		t.Fatalf("last step = %+v", in.History[9])
	}
	if in.Values["accept"] != "true" || in.Values["summary"] != "s2" {
		t.Fatalf("values = %v", in.Values)
	}
	if _, err := e.Execute(id, "A", p("A"), nil); !errors.Is(err, ErrCompleted) {
		t.Fatalf("execution after completion: %v", err)
	}
}

func TestEngineChecks(t *testing.T) {
	e := New("engine-1", clock())
	if err := e.Deploy(wfdef.Fig9A()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateInstance("nope"); !errors.Is(err, ErrUnknownDefinition) {
		t.Fatalf("unknown def: %v", err)
	}
	id, _ := e.CreateInstance("fig9-review")

	if _, err := e.Execute("ghost", "A", p("A"), nil); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("ghost instance: %v", err)
	}
	if _, err := e.Execute(id, "ZZ", p("A"), nil); err == nil {
		t.Fatal("unknown activity accepted")
	}
	if _, err := e.Execute(id, "A", "mallory", nil); !errors.Is(err, ErrNotParticipant) {
		t.Fatalf("wrong participant: %v", err)
	}
	if _, err := e.Execute(id, "D", p("D"), nil); !errors.Is(err, ErrNotEnabled) {
		t.Fatalf("not enabled: %v", err)
	}
	bad := wfdef.Fig9A()
	bad.Activities = nil
	if err := e.Deploy(bad); err == nil {
		t.Fatal("invalid definition deployed")
	}
}

func TestWorklist(t *testing.T) {
	e := New("engine-1", clock())
	e.Deploy(wfdef.Fig9A())
	id1, _ := e.CreateInstance("fig9-review")
	id2, _ := e.CreateInstance("fig9-review")
	items := e.Worklist(p("A"))
	if len(items) != 2 {
		t.Fatalf("worklist = %v", items)
	}
	e.Execute(id1, "A", p("A"), map[string]string{"request": "r"})
	items = e.Worklist(p("A"))
	if len(items) != 1 || items[0].InstanceID != id2 {
		t.Fatalf("worklist after execute = %v", items)
	}
	if got := e.Worklist(p("B1")); len(got) != 1 || got[0].InstanceID != id1 {
		t.Fatalf("B1 worklist = %v", got)
	}
}

func TestANDJoinTokens(t *testing.T) {
	e := New("engine-1", clock())
	e.Deploy(wfdef.Fig9A())
	id, _ := e.CreateInstance("fig9-review")
	e.Execute(id, "A", p("A"), map[string]string{"request": "r"})
	e.Execute(id, "B1", p("B1"), map[string]string{"techReview": "x"})
	// C needs both branches.
	if _, err := e.Execute(id, "C", p("C"), map[string]string{"summary": "s"}); !errors.Is(err, ErrNotEnabled) {
		t.Fatalf("AND-join with one token: %v", err)
	}
	e.Execute(id, "B2", p("B2"), map[string]string{"budgetReview": "y"})
	if _, err := e.Execute(id, "C", p("C"), map[string]string{"summary": "s"}); err != nil {
		t.Fatalf("AND-join with both tokens: %v", err)
	}
}

// TestSuperuserTamperIsUndetectable reproduces the paper's core negative
// result: the engine store can be silently rewritten.
func TestSuperuserTamperIsUndetectable(t *testing.T) {
	e := New("engine-1", clock())
	id := runFig9(t, e)

	before, _ := e.Instance(id)
	if before.History[0].Values["request"] != "r" {
		t.Fatalf("precondition: %v", before.History[0].Values)
	}

	su := e.Superuser()
	if err := su.TamperResult(id, "A", 0, "request", "FORGED ORDER"); err != nil {
		t.Fatal(err)
	}
	after, _ := e.Instance(id)
	if after.History[0].Values["request"] != "FORGED ORDER" {
		t.Fatal("tamper did not take effect")
	}
	// ... and the engine's own integrity check is blind to it.
	if err := e.VerifyInstance(id); err != nil {
		t.Fatalf("VerifyInstance reported %v — the baseline cannot detect tampering by design", err)
	}

	// The audit log itself can be rewritten.
	if err := su.EraseStep(id, "B1", 0); err != nil {
		t.Fatal(err)
	}
	erased, _ := e.Instance(id)
	if len(erased.History) != len(after.History)-1 {
		t.Fatal("step not erased")
	}
	if err := e.VerifyInstance(id); err != nil {
		t.Fatalf("VerifyInstance after log rewrite: %v", err)
	}

	// Error paths.
	if err := su.TamperResult("ghost", "A", 0, "x", "y"); err == nil {
		t.Fatal("tamper on ghost instance")
	}
	if err := su.TamperResult(id, "ZZ", 0, "x", "y"); err == nil {
		t.Fatal("tamper on ghost step")
	}
	if err := su.EraseStep(id, "ZZ", 9); err == nil {
		t.Fatal("erase of ghost step")
	}
}

func TestInstanceSnapshotIsolated(t *testing.T) {
	e := New("engine-1", clock())
	id := runFig9(t, e)
	snap, _ := e.Instance(id)
	snap.Values["accept"] = "mutated"
	snap.History[0].Values["request"] = "mutated"
	fresh, _ := e.Instance(id)
	if fresh.Values["accept"] != "true" || fresh.History[0].Values["request"] != "r" {
		t.Fatal("snapshot mutation leaked into engine state")
	}
}

// --- distributed ------------------------------------------------------------

func fig9Cluster(t *testing.T) (*Cluster, map[string]string) {
	t.Helper()
	e1, e2, e3 := New("site-1", clock()), New("site-2", clock()), New("site-3", clock())
	// Figure 1B style: activities spread across three sites.
	assignment := map[string]string{
		"A": "site-1", "B1": "site-1",
		"B2": "site-2", "C": "site-2",
		"D": "site-3",
	}
	c, err := NewCluster([]*Engine{e1, e2, e3}, assignment)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(wfdef.Fig9A()); err != nil {
		t.Fatal(err)
	}
	return c, assignment
}

func TestDistributedRunWithMigrations(t *testing.T) {
	c, _ := fig9Cluster(t)
	id, err := c.CreateInstance("fig9-review")
	if err != nil {
		t.Fatal(err)
	}
	if o, _ := c.Owner(id); o != "site-1" {
		t.Fatalf("initial owner = %s", o)
	}
	steps := []struct {
		act string
		in  map[string]string
	}{
		{"A", map[string]string{"request": "r"}},
		{"B1", map[string]string{"techReview": "ok"}},
		{"B2", map[string]string{"budgetReview": "ok"}},
		{"C", map[string]string{"summary": "s"}},
		{"D", map[string]string{"accept": "true"}},
	}
	for _, s := range steps {
		if _, err := c.Execute(id, s.act, p(s.act), s.in); err != nil {
			t.Fatalf("%s: %v", s.act, err)
		}
	}
	in, err := c.Instance(id)
	if err != nil || !in.Completed {
		t.Fatalf("instance = %+v, %v", in, err)
	}
	// A,B1 on site-1; B2,C on site-2; D on site-3: two migrations.
	if got := c.Migrations(); got != 2 {
		t.Fatalf("migrations = %d, want 2", got)
	}
	if c.MigratedBytes() == 0 {
		t.Fatal("no migrated bytes recorded")
	}
	ex := c.Executions()
	if ex["site-1"] != 2 || ex["site-2"] != 2 || ex["site-3"] != 1 {
		t.Fatalf("executions = %v", ex)
	}
	if o, _ := c.Owner(id); o != "site-3" {
		t.Fatalf("final owner = %s", o)
	}
	if got := strings.Join(c.EngineIDs(), ","); got != "site-1,site-2,site-3" {
		t.Fatalf("EngineIDs = %s", got)
	}
}

func TestDistributedLoopMigratesRepeatedly(t *testing.T) {
	c, _ := fig9Cluster(t)
	id, _ := c.CreateInstance("fig9-review")
	run := func(accept string) {
		c.Execute(id, "A", p("A"), map[string]string{"request": "r"})
		c.Execute(id, "B1", p("B1"), map[string]string{"techReview": "t"})
		c.Execute(id, "B2", p("B2"), map[string]string{"budgetReview": "b"})
		c.Execute(id, "C", p("C"), map[string]string{"summary": "s"})
		c.Execute(id, "D", p("D"), map[string]string{"accept": accept})
	}
	run("false")
	run("true")
	// Per pass: site1→site2 (B2), site2→site3 (D); loop back adds
	// site3→site1 (A). Total = 2 + 1 + 2 = 5.
	if got := c.Migrations(); got != 5 {
		t.Fatalf("migrations = %d, want 5", got)
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := NewCluster(nil, nil); err == nil {
		t.Fatal("empty cluster accepted")
	}
	e1 := New("site-1", clock())
	if _, err := NewCluster([]*Engine{e1}, map[string]string{"A": "ghost"}); err == nil {
		t.Fatal("assignment to unknown engine accepted")
	}
	c, _ := NewCluster([]*Engine{e1}, map[string]string{"A": "site-1"})
	if _, err := c.CreateInstance("nope"); err == nil {
		t.Fatal("instance of unknown definition created")
	}
	if _, err := c.Execute("ghost", "A", "x", nil); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("ghost execute: %v", err)
	}
	if _, err := c.Owner("ghost"); err == nil {
		t.Fatal("ghost owner found")
	}
	if _, err := c.Instance("ghost"); err == nil {
		t.Fatal("ghost instance found")
	}
	c.Deploy(wfdef.Fig9A())
	id, _ := c.CreateInstance("fig9-review")
	if _, err := c.Execute(id, "UNASSIGNED", p("A"), nil); err == nil {
		t.Fatal("unassigned activity executed")
	}
}

func TestEngineConcurrentInstances(t *testing.T) {
	// Many goroutines driving separate instances against one engine — the
	// shared-state serialization point the paper criticizes — must be
	// data-race free and fully consistent.
	e := New("engine-1", clock())
	if err := e.Deploy(wfdef.Fig9A()); err != nil {
		t.Fatal(err)
	}
	const n = 16
	ids := make([]string, n)
	for i := range ids {
		id, err := e.CreateInstance("fig9-review")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			steps := []struct {
				act string
				in  map[string]string
			}{
				{"A", map[string]string{"request": "r"}},
				{"B1", map[string]string{"techReview": "ok"}},
				{"B2", map[string]string{"budgetReview": "ok"}},
				{"C", map[string]string{"summary": "s"}},
				{"D", map[string]string{"accept": "true"}},
			}
			for _, s := range steps {
				if _, err := e.Execute(id, s.act, p(s.act), s.in); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, id)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	for _, id := range ids {
		in, err := e.Instance(id)
		if err != nil || !in.Completed || len(in.History) != 5 {
			t.Fatalf("instance %s: %+v, %v", id, in, err)
		}
	}
}
