// Package engine implements the BASELINE the paper argues against: a
// conventional engine-based workflow management system, in both the
// centralized (Figure 1A) and distributed (Figure 1B) variants.
//
// The engine holds process instances in its own trusted store, in
// plaintext. That is precisely the paper's security criticism: a
// superuser of the engine's administration domain (e.g. the database
// administrator) can rewrite stored execution results and logs without
// leaving any verifiable trace, so participants can repudiate their work —
// and nothing in the system can prove them wrong. The Superuser type makes
// that attack executable, and VerifyInstance demonstrates that the engine
// has no cryptographic basis to detect it (contrast with
// document.VerifyAll on DRA4WfMS documents).
//
// The distributed variant adds the scalability pain points of Section 1:
// process instances must migrate between engines as control flow crosses
// engine boundaries, under a single-owner coherence protocol; the
// migration count and the per-engine load are observable so the
// comparative benchmarks can reproduce the paper's scalability argument.
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dra4wfms/internal/secpol"
	"dra4wfms/internal/wfdef"
)

// Errors.
var (
	// ErrUnknownInstance: no such process instance on this engine.
	ErrUnknownInstance = errors.New("engine: unknown process instance")
	// ErrUnknownDefinition: the definition is not deployed.
	ErrUnknownDefinition = errors.New("engine: unknown definition")
	// ErrNotParticipant: the caller is not the activity's participant.
	ErrNotParticipant = errors.New("engine: wrong participant")
	// ErrNotEnabled: the activity is not enabled.
	ErrNotEnabled = errors.New("engine: activity not enabled")
	// ErrCompleted: the instance has finished.
	ErrCompleted = errors.New("engine: instance completed")
	// ErrNotOwner: (distributed) the instance lives on another engine.
	ErrNotOwner = errors.New("engine: instance owned by another engine")
)

// Step records one executed activity in the engine's history log.
type Step struct {
	Activity    string
	Iteration   int
	Participant string
	// Values are the participant's inputs — stored in PLAINTEXT, the point
	// of the paper's critique.
	Values map[string]string
	At     time.Time
	Next   []string
}

// Instance is one process instance held by an engine.
type Instance struct {
	ID         string
	Definition string
	Values     map[string]string
	History    []Step
	Tokens     map[string]int
	Completed  bool
}

func (in *Instance) clone() *Instance {
	cp := &Instance{
		ID: in.ID, Definition: in.Definition, Completed: in.Completed,
		Values: map[string]string{}, Tokens: map[string]int{},
	}
	for k, v := range in.Values {
		cp.Values[k] = v
	}
	for k, v := range in.Tokens {
		cp.Tokens[k] = v
	}
	cp.History = make([]Step, len(in.History))
	for i, s := range in.History {
		vs := map[string]string{}
		for k, v := range s.Values {
			vs[k] = v
		}
		cp.History[i] = Step{Activity: s.Activity, Iteration: s.Iteration,
			Participant: s.Participant, Values: vs, At: s.At,
			Next: append([]string(nil), s.Next...)}
	}
	return cp
}

// WorkItem is one entry of a participant's engine-side TO-DO list.
type WorkItem struct {
	InstanceID string
	Activity   string
}

// Engine is one workflow engine (one site of Figure 1).
type Engine struct {
	// ID names the engine (a site in the distributed variant).
	ID string
	// Clock supplies history timestamps.
	Clock func() time.Time

	mu        sync.Mutex
	defs      map[string]*wfdef.Definition
	instances map[string]*Instance
	seq       int
}

// New creates an engine. clock may be nil (defaults to time.Now).
func New(id string, clock func() time.Time) *Engine {
	if clock == nil {
		clock = time.Now
	}
	return &Engine{
		ID:        id,
		Clock:     clock,
		defs:      map[string]*wfdef.Definition{},
		instances: map[string]*Instance{},
	}
}

// Deploy registers a workflow definition with the engine.
func (e *Engine) Deploy(def *wfdef.Definition) error {
	if err := def.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.defs[def.Name] = def
	return nil
}

// CreateInstance starts a new process instance of the deployed definition
// and returns its ID.
func (e *Engine) CreateInstance(defName string) (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	def, ok := e.defs[defName]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownDefinition, defName)
	}
	e.seq++
	id := fmt.Sprintf("%s-inst-%d", e.ID, e.seq)
	in := &Instance{
		ID: id, Definition: defName,
		Values: map[string]string{},
		Tokens: map[string]int{},
	}
	for _, a := range def.InitialActivities() {
		in.Tokens[a]++
	}
	e.instances[id] = in
	return id, nil
}

func requiredTokens(def *wfdef.Definition, activity string) int {
	a := def.Activity(activity)
	if a != nil && a.Join == wfdef.JoinAND {
		return len(def.Incoming(activity))
	}
	return 1
}

// Execute runs one activity on behalf of participant. The engine sees the
// whole plaintext instance, so routing never needs a TFC; confidentiality
// rests entirely on trusting the engine and its administrators.
func (e *Engine) Execute(instanceID, activity, participant string, inputs map[string]string) ([]string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	in, ok := e.instances[instanceID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownInstance, instanceID)
	}
	if in.Completed {
		return nil, ErrCompleted
	}
	def := e.defs[in.Definition]
	act := def.Activity(activity)
	if act == nil {
		return nil, fmt.Errorf("engine: unknown activity %q", activity)
	}
	if act.Participant != participant {
		return nil, fmt.Errorf("%w: %s is assigned to %s", ErrNotParticipant, activity, act.Participant)
	}
	need := requiredTokens(def, activity)
	if in.Tokens[activity] < need {
		return nil, fmt.Errorf("%w: %s", ErrNotEnabled, activity)
	}

	// Route with the full plaintext state.
	env := map[string]string{}
	for k, v := range in.Values {
		env[k] = v
	}
	for k, v := range inputs {
		env[k] = v
	}
	next, err := secpol.Route(def, act, secpol.Env(env))
	if err != nil {
		return nil, err
	}

	in.Tokens[activity] -= need
	iter := 0
	for _, s := range in.History {
		if s.Activity == activity {
			iter = s.Iteration + 1
		}
	}
	values := map[string]string{}
	for k, v := range inputs {
		values[k] = v
		in.Values[k] = v
	}
	in.History = append(in.History, Step{
		Activity: activity, Iteration: iter, Participant: participant,
		Values: values, At: e.Clock(), Next: next,
	})
	for _, to := range next {
		if to == wfdef.EndID {
			in.Completed = true
			continue
		}
		in.Tokens[to]++
	}
	return next, nil
}

// Worklist returns the participant's enabled activities across instances.
func (e *Engine) Worklist(participant string) []WorkItem {
	e.mu.Lock()
	defer e.mu.Unlock()
	var items []WorkItem
	for id, in := range e.instances {
		if in.Completed {
			continue
		}
		def := e.defs[in.Definition]
		for act, tokens := range in.Tokens {
			if tokens >= requiredTokens(def, act) {
				if a := def.Activity(act); a != nil && a.Participant == participant {
					items = append(items, WorkItem{InstanceID: id, Activity: act})
				}
			}
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].InstanceID != items[j].InstanceID {
			return items[i].InstanceID < items[j].InstanceID
		}
		return items[i].Activity < items[j].Activity
	})
	return items
}

// Instance returns a deep copy of the instance state (what an auditor
// querying the engine's database would see).
func (e *Engine) Instance(id string) (*Instance, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	in, ok := e.instances[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	return in.clone(), nil
}

// VerifyInstance is the engine's "integrity check". It always succeeds:
// the store carries no participant-verifiable evidence, so an altered
// history is indistinguishable from a genuine one. This is the
// nonrepudiation gap the DRA4WfMS cascade closes.
func (e *Engine) VerifyInstance(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.instances[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	return nil
}

// --- the superuser attack ------------------------------------------------------

// Superuser models an administrator of the engine's domain: somebody with
// raw write access to the instance store and its logs.
type Superuser struct{ e *Engine }

// Superuser returns the engine's superuser facade.
func (e *Engine) Superuser() Superuser { return Superuser{e: e} }

// TamperResult silently rewrites a stored execution result. No error, no
// trace, no way for any participant to prove the alteration happened.
func (s Superuser) TamperResult(instanceID, activity string, iter int, variable, value string) error {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	in, ok := s.e.instances[instanceID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, instanceID)
	}
	for i := range in.History {
		st := &in.History[i]
		if st.Activity == activity && st.Iteration == iter {
			st.Values[variable] = value
			if cur, exists := in.Values[variable]; exists || cur == "" {
				in.Values[variable] = value
			}
			return nil
		}
	}
	return fmt.Errorf("engine: no step %s#%d in %s", activity, iter, instanceID)
}

// EraseStep removes a history entry entirely — rewriting the audit log.
func (s Superuser) EraseStep(instanceID, activity string, iter int) error {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	in, ok := s.e.instances[instanceID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, instanceID)
	}
	for i := range in.History {
		st := in.History[i]
		if st.Activity == activity && st.Iteration == iter {
			in.History = append(in.History[:i], in.History[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("engine: no step %s#%d in %s", activity, iter, instanceID)
}
