package httpapi

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/relay"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/trace"
	"dra4wfms/internal/wfdef"
)

// failFirstProcess drops the first KindProcess delivery so the relay is
// forced into a retry; both attempts must land in the same trace.
type failFirstProcess struct {
	inner relay.Transport

	mu     sync.Mutex
	failed bool
}

func (f *failFirstProcess) Deliver(ctx context.Context, e relay.Entry) error {
	f.mu.Lock()
	first := e.Kind == KindProcess && !f.failed
	if first {
		f.failed = true
	}
	f.mu.Unlock()
	if first {
		return errors.New("injected: first process delivery dropped")
	}
	return f.inner.Deliver(ctx, e)
}

// TestDistributedTraceAcrossTiers is the acceptance test for the tracing
// tentpole: one Fig. 9 review workflow driven over real HTTP through
// portal and TFC servers — the AEA→TFC hop routed through a durable
// relay whose first delivery attempt is dropped — must yield ONE trace
// whose assembled tree contains correctly parent-linked spans from the
// client, http, portal, tfc, relay, pool, and dsig tiers, with the relay
// retry visible as two attempts of the same trace.
func TestDistributedTraceAcrossTiers(t *testing.T) {
	col := trace.Default()
	col.Reset()
	w := newWorld(t)

	// Fig. 9 under the advanced operational model: identical process graph
	// to Fig. 9A, but every hop passes through the TFC tier — the only
	// model that can produce TFC spans at all.
	def := wfdef.Fig9B()
	doc, err := document.New(def, w.env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	pid := doc.ProcessID()

	// The test driver is the trace root, exactly like `dractl remote`.
	ctx, rootSpan := col.StartRoot(context.Background(), "client", "client_drive_seconds")
	traceID := rootSpan.Context().TraceID.String()

	designer := w.clientFor(t, "designer@acme")
	if _, err := designer.StoreInitialCtx(ctx, doc); err != nil {
		t.Fatal(err)
	}

	// Activity A's TFC hop goes through a relay forwarder with an injected
	// first-attempt failure: at-least-once delivery, same trace.
	inj := &failFirstProcess{}
	fwd, err := NewForwarder("", w.env.KeyOf(wfdef.Fig9Participants["A"]), relay.Config{
		Workers:        2,
		MaxAttempts:    4,
		AttemptTimeout: 5 * time.Second,
		Backoff:        relay.BackoffPolicy{Base: time.Millisecond, Cap: 5 * time.Millisecond},
		Breaker:        relay.BreakerPolicy{Threshold: -1},
	}, func(tr relay.Transport) relay.Transport {
		inj.inner = tr
		return inj
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fwd.Close() })
	fwd.SetClock(w.clock)

	steps := []struct {
		act    string
		inputs aea.Inputs
	}{
		{"A", aea.Inputs{"request": "r"}},
		{"B1", aea.Inputs{"techReview": "ok"}},
		{"B2", aea.Inputs{"budgetReview": "ok"}},
		{"C", aea.Inputs{"summary": "s"}},
		{"D", aea.Inputs{"accept": "true"}},
	}
	for _, s := range steps {
		participant := wfdef.Fig9Participants[s.act]
		cli := w.clientFor(t, participant)
		cur, err := cli.RetrieveCtx(ctx, pid)
		if err != nil {
			t.Fatal(err)
		}
		interm, err := w.agents[s.act].ExecuteToTFCCtx(ctx, cur, s.act, s.inputs)
		if err != nil {
			t.Fatal(err)
		}
		var outDoc *document.Document
		if s.act == "A" {
			// Durable relay hop with the forced retry.
			_, outDoc, err = fwd.Process(ctx, w.tfcSrv.URL, interm)
		} else {
			_, outDoc, err = w.tfcClientFor(t, participant).ProcessViaTFCCtx(ctx, interm)
		}
		if err != nil {
			t.Fatalf("%s via TFC: %v", s.act, err)
		}
		if _, err := cli.StoreCtx(ctx, outDoc); err != nil {
			t.Fatal(err)
		}
	}
	rootSpan.End()

	// Fetch the trace over the wire exactly as dractl trace does — from
	// both tiers, merged (here both tiers share one process and ring, so
	// the merge also exercises Assemble's span-ID dedup).
	portalResp, err := w.clientFor(t, "designer@acme").Traces(traceID)
	if err != nil {
		t.Fatal(err)
	}
	tfcResp, err := w.tfcClientFor(t, "designer@acme").Traces(traceID)
	if err != nil {
		t.Fatal(err)
	}
	spans := append(portalResp.Spans, tfcResp.Spans...)
	if len(spans) == 0 {
		t.Fatal("no spans recorded for the drive's trace")
	}
	for _, fs := range spans {
		if fs.TraceID != traceID {
			t.Fatalf("span %s has trace %s, want %s", fs.Name, fs.TraceID, traceID)
		}
	}

	// The portal bound the workflow instance to the trace: the cascade is
	// queryable by process ID too.
	byProcess, err := w.clientFor(t, "designer@acme").Traces("")
	if err != nil {
		t.Fatal(err)
	}
	if byProcess.Bindings[pid] != traceID {
		t.Fatalf("instance binding %q = %q, want %q", pid, byProcess.Bindings[pid], traceID)
	}

	// Every architectural tier contributed spans.
	byID := map[string]trace.FinishedSpan{}
	tiers := map[string]int{}
	for _, fs := range portalResp.Spans {
		byID[fs.SpanID] = fs
		tiers[fs.Tier]++
	}
	for _, tier := range []string{"client", "http", "portal", "tfc", "relay", "pool", "dsig"} {
		if tiers[tier] == 0 {
			t.Errorf("no spans from tier %q (got %v)", tier, tiers)
		}
	}

	rootID := rootSpan.Context().SpanID.String()

	// The relay retry: two delivery attempts, both children of the root
	// (the forwarder enqueued under the driver's span), first errored.
	var attempts []trace.FinishedSpan
	for _, fs := range byID {
		if fs.Name == "relay_delivery_seconds" {
			attempts = append(attempts, fs)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("relay delivery spans = %d, want 2 (failed attempt + retry)", len(attempts))
	}
	var sawFail, sawOK bool
	for _, a := range attempts {
		if a.ParentID != rootID {
			t.Errorf("relay attempt parent = %s, want root %s", a.ParentID, rootID)
		}
		switch a.Attrs["attempt"] {
		case "1":
			sawFail = a.Status == "error"
		case "2":
			sawOK = a.Status == ""
		}
	}
	if !sawFail || !sawOK {
		t.Fatalf("attempts = %+v, want attempt 1 errored and attempt 2 clean", attempts)
	}

	// The retried delivery's HTTP hop is a child of the retry span, and
	// the TFC's processing span is a child of that HTTP hop: the trace
	// crosses the wire with correct links.
	var retrySpan trace.FinishedSpan
	for _, a := range attempts {
		if a.Attrs["attempt"] == "2" {
			retrySpan = a
		}
	}
	var tfcHTTP trace.FinishedSpan
	for _, fs := range byID {
		if fs.Tier == "http" && fs.ParentID == retrySpan.SpanID {
			tfcHTTP = fs
		}
	}
	if tfcHTTP.SpanID == "" {
		t.Fatal("no http span parented to the relay retry — traceparent not forwarded on redelivery")
	}
	if route := tfcHTTP.Attrs["route"]; route != "POST /v1/process" {
		t.Fatalf("relay retry's http span route = %q, want POST /v1/process", route)
	}
	foundTFCChild := false
	for _, fs := range byID {
		if fs.Tier == "tfc" && fs.ParentID == tfcHTTP.SpanID {
			foundTFCChild = true
		}
	}
	if !foundTFCChild {
		t.Fatal("no tfc span parented to the retried hop's http span")
	}

	// Assembly: the merged (duplicated) fetch collapses to one tree rooted
	// at the driver span, with no orphans.
	roots := trace.Assemble(spans)
	if len(roots) != 1 {
		t.Fatalf("assembled roots = %d, want 1", len(roots))
	}
	if roots[0].Span.Name != "client_drive_seconds" {
		t.Fatalf("root span = %q", roots[0].Span.Name)
	}
	visited := 0
	trace.Walk(roots, func(n *trace.Node, depth int) { visited++ })
	if visited != len(byID) {
		t.Fatalf("walked %d spans, ring holds %d — orphaned spans in the tree", visited, len(byID))
	}

	// The waterfall names every tier and the retry's error status.
	var buf bytes.Buffer
	trace.Waterfall(&buf, roots)
	render := buf.String()
	for _, want := range []string{"portal", "tfc", "relay", "pool", "dsig", "[error]", "per-tier span time"} {
		if !strings.Contains(render, want) {
			t.Errorf("waterfall missing %q:\n%s", want, render)
		}
	}
}
