package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"dra4wfms/internal/document"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/portal"
	"dra4wfms/internal/relay"
	"dra4wfms/internal/trace"
)

// Relay delivery kinds the HTTP transport understands. Dest is the
// callback URL for webhooks and the service base URL otherwise.
const (
	// KindWebhook POSTs a signed notification to a participant callback.
	KindWebhook = "webhook"
	// KindStore POSTs a produced document to a portal.
	KindStore = "store"
	// KindStoreInitial POSTs a secured initial document to a portal.
	KindStoreInitial = "store-initial"
	// KindProcess POSTs an intermediate document to a TFC server.
	KindProcess = "process"
)

// Idempotency headers. A relay-driven request carries its entry's key in
// HeaderIdempotencyKey; a receiver that has already applied that key
// replays its cached response and marks it with HeaderIdempotentReplay.
const (
	HeaderIdempotencyKey   = "X-DRA-Idempotency-Key"
	HeaderIdempotentReplay = "X-DRA-Idempotent-Replay"
)

// stashCap bounds retained response bodies for settled sends whose waiter
// vanished (e.g. deliveries replayed after a restart).
const stashCap = 1024

// HTTPTransport delivers relay entries as signed DRA4WfMS API requests.
// Every attempt builds and signs a fresh request — the receivers' nonce
// replay cache rejects a reused signature, so retries cannot share one —
// and attaches the entry's idempotency key for receiver-side dedup.
// Responses with a status retrying cannot fix (4xx other than 408/429)
// fail permanently and go straight to the dead-letter queue.
type HTTPTransport struct {
	// Keys signs the requests (the sending principal).
	Keys *pki.KeyPair
	// HTTP performs the deliveries (default a fresh client; the relay's
	// attempt context enforces the timeout).
	HTTP *http.Client
	// Clock supplies request dates (default time.Now).
	Clock func() time.Time

	mu    sync.Mutex
	stash map[string][]byte // idempotency key → response body
	order []string
}

// Deliver implements relay.Transport.
func (t *HTTPTransport) Deliver(ctx context.Context, e relay.Entry) error {
	var target, contentType string
	switch e.Kind {
	case KindWebhook:
		target, contentType = e.Dest, ContentJSON
	case KindStore:
		target, contentType = e.Dest+"/v1/documents", ContentXML
	case KindStoreInitial:
		target, contentType = e.Dest+"/v1/documents/initial", ContentXML
	case KindProcess:
		target, contentType = e.Dest+"/v1/process", ContentXML
	default:
		return relay.Permanent(fmt.Errorf("httpapi: unknown relay kind %q", e.Kind))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(e.Payload))
	if err != nil {
		return relay.Permanent(err)
	}
	req.Header.Set("Content-Type", contentType)
	if e.Key != "" {
		req.Header.Set(HeaderIdempotencyKey, e.Key)
	}
	// The relay put the entry's persisted trace context into ctx; forward
	// it so the receiving tier joins the same trace. Signature-safe:
	// SignRequest covers method, path, date, nonce, and body only.
	if tp := trace.TraceparentFromContext(ctx); tp != "" {
		req.Header.Set(TraceparentHeader, tp)
	}
	// The attempt context's deadline (relay AttemptTimeout) rides along
	// so the receiver abandons the work when this attempt gives up —
	// the relay will re-deliver with a fresh budget.
	AttachDeadline(ctx, req.Header)
	clock := t.Clock
	if clock == nil {
		clock = time.Now
	}
	if err := SignRequest(req, e.Payload, t.Keys, clock()); err != nil {
		return relay.Permanent(err)
	}
	httpc := t.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		err := fmt.Errorf("httpapi: relay %s %s: %s: %s",
			e.Kind, e.Dest, resp.Status, bytes.TrimSpace(body))
		if resp.StatusCode/100 == 4 &&
			resp.StatusCode != http.StatusRequestTimeout &&
			resp.StatusCode != http.StatusTooManyRequests {
			return relay.Permanent(err)
		}
		return err
	}
	if e.Kind != KindWebhook {
		t.keep(e.Key, body)
	}
	return nil
}

// keep retains the response body for TakeResponse, bounded FIFO.
func (t *HTTPTransport) keep(key string, body []byte) {
	if key == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stash == nil {
		t.stash = map[string][]byte{}
	}
	if _, ok := t.stash[key]; !ok {
		t.order = append(t.order, key)
	}
	t.stash[key] = body
	for len(t.order) > stashCap {
		delete(t.stash, t.order[0])
		t.order = t.order[1:]
	}
}

// TakeResponse removes and returns the response body recorded for a
// delivered idempotency key.
func (t *HTTPTransport) TakeResponse(key string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	body, ok := t.stash[key]
	if ok {
		delete(t.stash, key)
		for i, k := range t.order {
			if k == key {
				t.order = append(t.order[:i], t.order[i+1:]...)
				break
			}
		}
	}
	return body, ok
}

// ErrDuplicateSend reports that an identical payload for the same
// destination was already delivered (or is still in flight) — the relay
// refused a second enqueue.
var ErrDuplicateSend = errors.New("httpapi: duplicate send suppressed by relay")

// Forwarder gives document submissions durable at-least-once delivery
// with exactly-once effects: each send is journaled in the relay's
// outbox before the first attempt, retried with backoff through circuit
// breakers, and deduplicated by idempotency key at the receiver. It is
// the reliable version of Client.Store/StoreInitial/ProcessViaTFC for
// the portal→pool and AEA→TFC hops.
type Forwarder struct {
	tr *HTTPTransport
	r  *relay.Relay

	mu      sync.Mutex
	waiters map[string]chan error
}

// TransportDecorator wraps the forwarder's HTTP transport — fault
// injection in tests and drabench.
type TransportDecorator func(relay.Transport) relay.Transport

// NewForwarder opens (or replays) the outbox WAL at walPath — "" keeps
// it in memory — and starts a relay delivering as keys.Owner. cfg tunes
// the relay; its OnSettle hook is owned by the forwarder. Decorators
// wrap the transport innermost-first.
func NewForwarder(walPath string, keys *pki.KeyPair, cfg relay.Config, decorate ...TransportDecorator) (*Forwarder, error) {
	ob, err := relay.OpenOutbox(walPath)
	if err != nil {
		return nil, err
	}
	f := &Forwarder{
		tr:      &HTTPTransport{Keys: keys},
		waiters: map[string]chan error{},
	}
	var tr relay.Transport = f.tr
	for _, d := range decorate {
		tr = d(tr)
	}
	cfg.OnSettle = f.settled
	f.r = relay.New(ob, tr, cfg)
	return f, nil
}

// Relay exposes the underlying relay (DLQ inspection, stats).
func (f *Forwarder) Relay() *relay.Relay { return f.r }

// SetHTTP directs deliveries through hc (tests, custom transports).
func (f *Forwarder) SetHTTP(hc *http.Client) { f.tr.HTTP = hc }

// SetClock overrides the request-date clock.
func (f *Forwarder) SetClock(clock func() time.Time) { f.tr.Clock = clock }

func (f *Forwarder) settled(e relay.Entry, err error) {
	f.mu.Lock()
	ch := f.waiters[e.Key]
	delete(f.waiters, e.Key)
	f.mu.Unlock()
	if ch != nil {
		ch <- err
	}
}

// send enqueues one delivery and blocks until it settles (acknowledged
// or dead-lettered) or ctx expires. A ctx expiry does NOT cancel the
// delivery — it stays journaled and keeps retrying.
func (f *Forwarder) send(ctx context.Context, kind, dest string, payload []byte) ([]byte, error) {
	key := relay.IdempotencyKey(kind, dest, payload)
	ch := make(chan error, 1)
	f.mu.Lock()
	if _, exists := f.waiters[key]; exists {
		f.mu.Unlock()
		return nil, ErrDuplicateSend
	}
	f.waiters[key] = ch
	f.mu.Unlock()
	_, dup, err := f.r.EnqueueTraced(dest, kind, key, trace.TraceparentFromContext(ctx), payload)
	if err != nil || dup {
		f.mu.Lock()
		delete(f.waiters, key)
		f.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return nil, ErrDuplicateSend
	}
	select {
	case err := <-ch:
		if err != nil {
			return nil, fmt.Errorf("httpapi: delivery dead-lettered: %w", err)
		}
		body, _ := f.tr.TakeResponse(key)
		return body, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// StoreInitial durably submits a secured initial document to the portal
// at baseURL.
func (f *Forwarder) StoreInitial(ctx context.Context, baseURL string, doc *document.Document) ([]portal.Notification, error) {
	return f.sendDocument(ctx, KindStoreInitial, baseURL, doc)
}

// Store durably submits a produced document to the portal at baseURL.
func (f *Forwarder) Store(ctx context.Context, baseURL string, doc *document.Document) ([]portal.Notification, error) {
	return f.sendDocument(ctx, KindStore, baseURL, doc)
}

func (f *Forwarder) sendDocument(ctx context.Context, kind, baseURL string, doc *document.Document) ([]portal.Notification, error) {
	body, err := f.send(ctx, kind, baseURL, doc.Bytes())
	if err != nil {
		return nil, err
	}
	var notes []portal.Notification
	if len(body) > 0 {
		if err := json.Unmarshal(body, &notes); err != nil {
			return nil, fmt.Errorf("httpapi: decoding notifications: %w", err)
		}
	}
	return notes, nil
}

// Process durably submits an intermediate document to the TFC at baseURL
// (the AEA→TFC forwarding hop) and returns the routed outcome.
func (f *Forwarder) Process(ctx context.Context, baseURL string, doc *document.Document) (*ProcessResponse, *document.Document, error) {
	body, err := f.send(ctx, KindProcess, baseURL, doc.Bytes())
	if err != nil {
		return nil, nil, err
	}
	var pr ProcessResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		return nil, nil, fmt.Errorf("httpapi: decoding process response: %w", err)
	}
	out, err := document.Parse([]byte(pr.Document))
	if err != nil {
		return nil, nil, fmt.Errorf("httpapi: parsing returned document: %w", err)
	}
	return &pr, out, nil
}

// Flush blocks until every accepted send has settled.
func (f *Forwarder) Flush() { f.r.Flush() }

// Close stops the relay; journaled deliveries survive in the WAL.
func (f *Forwarder) Close() error { return f.r.Close() }
