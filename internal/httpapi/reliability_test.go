package httpapi

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/relay"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/wfdef"
)

// TestReceiverIdempotency delivers the same signed CER append twice — as
// a relay retry would after a lost acknowledgement — and asserts the
// document gains exactly one CER, the second request is answered from
// the idempotency cache, and the dup shows up in telemetry.
func TestReceiverIdempotency(t *testing.T) {
	w := newWorld(t)
	doc, err := document.New(wfdef.Fig9A(), w.env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	pid := doc.ProcessID()
	if _, err := w.clientFor(t, "designer@acme").StoreInitial(doc); err != nil {
		t.Fatal(err)
	}
	alice := wfdef.Fig9Participants["A"]
	cli := w.clientFor(t, alice)
	cur, err := cli.Retrieve(pid)
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.agents["A"].Execute(cur, "A", aea.Inputs{"request": "r"}, now)
	if err != nil {
		t.Fatal(err)
	}
	body := out.Doc.Bytes()
	key := relay.IdempotencyKey(KindStore, w.portalSrv.URL, body)
	before := tel.Counter("http_requests_deduplicated_total").Value()

	send := func(principal string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, w.portalSrv.URL+"/v1/documents", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ContentXML)
		req.Header.Set(HeaderIdempotencyKey, key)
		// Each delivery attempt is signed afresh (the nonce cache rejects
		// verbatim replays); only the idempotency key is shared.
		if err := SignRequest(req, body, w.env.KeyOf(principal), w.clock()); err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	r1, b1 := send(alice)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first store: %s: %s", r1.Status, b1)
	}
	if r1.Header.Get(HeaderIdempotentReplay) != "" {
		t.Fatal("first store must not be marked as a replay")
	}
	r2, b2 := send(alice)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("redelivered store: %s: %s", r2.Status, b2)
	}
	if r2.Header.Get(HeaderIdempotentReplay) != "true" {
		t.Fatal("redelivery not answered from the idempotency cache")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("replayed response differs:\n%s\nvs\n%s", b1, b2)
	}

	// Exactly one CER: initial signature + A's CER cascade.
	final, err := cli.Retrieve(pid)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := final.VerifyAll(w.env.Registry); err != nil || n != 2 {
		t.Fatalf("VerifyAll = %d, %v — want exactly 2 (initial + one CER)", n, err)
	}
	if got := tel.Counter("http_requests_deduplicated_total").Value(); got != before+1 {
		t.Fatalf("deduplicated counter advanced by %d, want 1", got-before)
	}

	// The cache is scoped per principal: another caller reusing the key
	// is not served alice's cached response — the handler runs (the
	// portal's merge keeps the re-store harmless, but not from the cache).
	bob := wfdef.Fig9Participants["B1"]
	r3, _ := send(bob)
	if r3.Header.Get(HeaderIdempotentReplay) != "" {
		t.Fatal("idempotency cache leaked across principals")
	}
	final, err = cli.Retrieve(pid)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := final.VerifyAll(w.env.Registry); err != nil || n != 2 {
		t.Fatalf("after cross-principal redelivery VerifyAll = %d, %v — want still 2", n, err)
	}
}

// faultyWorld builds forwarders whose every hop passes through a seeded
// FaultInjector dropping, duplicating, and un-acking deliveries.
type faultyWorld struct {
	w         *world
	rnd       func() float64
	injectors []*relay.FaultInjector
	fwds      []*Forwarder
}

func newFaultyWorld(t *testing.T, seed int64) *faultyWorld {
	t.Helper()
	src := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return &faultyWorld{
		w: newWorld(t),
		rnd: func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return src.Float64()
		},
	}
}

// forwarderFor starts a relay forwarder for one principal with 20% of
// hops dropped, 20% duplicated, and 10% delivered-but-unacknowledged.
func (fw *faultyWorld) forwarderFor(t *testing.T, id string) *Forwarder {
	t.Helper()
	inj := &relay.FaultInjector{
		DropRate:    0.2,
		DupRate:     0.2,
		AckLossRate: 0.1,
		Rand:        fw.rnd,
	}
	cfg := relay.Config{
		Workers:        2,
		MaxAttempts:    50,
		AttemptTimeout: 5 * time.Second,
		Backoff:        relay.BackoffPolicy{Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond},
		Breaker:        relay.BreakerPolicy{Threshold: -1},
		Rand:           fw.rnd,
	}
	f, err := NewForwarder("", fw.w.env.KeyOf(id), cfg, func(tr relay.Transport) relay.Transport {
		inj.Inner = tr
		return inj
	})
	if err != nil {
		t.Fatal(err)
	}
	f.SetClock(fw.w.clock)
	t.Cleanup(func() { _ = f.Close() })
	fw.injectors = append(fw.injectors, inj)
	fw.fwds = append(fw.fwds, f)
	return f
}

// verify asserts the exactly-once outcome: workflow completed with one
// CER per activity (wantSigs total signatures — 6 for Fig. 9A, 11 for
// Fig. 9B where each step also carries the TFC's notarization), no
// delivery stuck outside the DLQ, faults actually fired, and the relay
// metrics visible in the exposition.
func (fw *faultyWorld) verify(t *testing.T, pid string, wantSigs int) {
	t.Helper()
	designer := fw.w.clientFor(t, "designer@acme")
	st, err := designer.Status(pid)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "completed" || len(st.Steps) != 5 {
		t.Fatalf("status under faults = %+v", st)
	}
	final, err := designer.Retrieve(pid)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := final.VerifyAll(fw.w.env.Registry); err != nil || n != wantSigs {
		t.Fatalf("VerifyAll = %d, %v — want %d (exactly one CER per activity)", n, err, wantSigs)
	}
	for _, f := range fw.fwds {
		if s := f.Relay().Stats(); s.Pending != 0 || s.Dead != 0 {
			t.Fatalf("deliveries stuck outside the DLQ: %+v", s)
		}
	}
	var drops, acks, dups int64
	for _, inj := range fw.injectors {
		d, a, du := inj.Injected()
		drops, acks, dups = drops+d, acks+a, dups+du
	}
	if drops+acks+dups == 0 {
		t.Fatal("fault injector never fired; the run proved nothing")
	}
	t.Logf("faults injected: %d drops, %d ack losses, %d dups", drops, acks, dups)

	metrics, err := designer.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"relay_queue_depth", "relay_dlq_size", "relay_delivered_total", "relay_attempts_total", "relay_breaker_state"} {
		if !strings.Contains(metrics, name) {
			t.Fatalf("metric %s missing from /v1/metrics exposition", name)
		}
	}
}

// TestFaultInjectionBasicModel drives the Fig. 9A workflow with every
// portal hop relayed through injected faults and proves exactly-once
// completion.
func TestFaultInjectionBasicModel(t *testing.T) {
	fw := newFaultyWorld(t, 9)
	ctx := context.Background()
	doc, err := document.New(wfdef.Fig9A(), fw.w.env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	pid := doc.ProcessID()
	if _, err := fw.forwarderFor(t, "designer@acme").StoreInitial(ctx, fw.w.portalSrv.URL, doc); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		act    string
		inputs aea.Inputs
	}{
		{"A", aea.Inputs{"request": "r"}},
		{"B1", aea.Inputs{"techReview": "ok"}},
		{"B2", aea.Inputs{"budgetReview": "ok"}},
		{"C", aea.Inputs{"summary": "s"}},
		{"D", aea.Inputs{"accept": "true"}},
	}
	for _, s := range steps {
		participant := wfdef.Fig9Participants[s.act]
		cur, err := fw.w.clientFor(t, participant).Retrieve(pid)
		if err != nil {
			t.Fatal(err)
		}
		out, err := fw.w.agents[s.act].Execute(cur, s.act, s.inputs, now)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.forwarderFor(t, participant).Store(ctx, fw.w.portalSrv.URL, out.Doc); err != nil {
			t.Fatalf("%s store under faults: %v", s.act, err)
		}
	}
	fw.verify(t, pid, 6)
}

// TestFaultInjectionAdvancedModel drives Fig. 9B — every AEA→TFC
// forwarding hop and portal store relayed through injected faults — and
// proves exactly-once completion with notarized timestamps.
func TestFaultInjectionAdvancedModel(t *testing.T) {
	fw := newFaultyWorld(t, 23)
	ctx := context.Background()
	doc, err := document.New(wfdef.Fig9B(), fw.w.env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	pid := doc.ProcessID()
	if _, err := fw.forwarderFor(t, "designer@acme").StoreInitial(ctx, fw.w.portalSrv.URL, doc); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		act    string
		inputs aea.Inputs
	}{
		{"A", aea.Inputs{"request": "r"}},
		{"B1", aea.Inputs{"techReview": "ok"}},
		{"B2", aea.Inputs{"budgetReview": "ok"}},
		{"C", aea.Inputs{"summary": "s"}},
		{"D", aea.Inputs{"accept": "true"}},
	}
	for _, s := range steps {
		participant := wfdef.Fig9Participants[s.act]
		f := fw.forwarderFor(t, participant)
		cur, err := fw.w.clientFor(t, participant).Retrieve(pid)
		if err != nil {
			t.Fatal(err)
		}
		interm, err := fw.w.agents[s.act].ExecuteToTFC(cur, s.act, s.inputs)
		if err != nil {
			t.Fatal(err)
		}
		pr, outDoc, err := f.Process(ctx, fw.w.tfcSrv.URL, interm)
		if err != nil {
			t.Fatalf("%s TFC hop under faults: %v", s.act, err)
		}
		if pr.Timestamp.IsZero() {
			t.Fatalf("%s: no notarized timestamp", s.act)
		}
		if _, err := f.Store(ctx, fw.w.portalSrv.URL, outDoc); err != nil {
			t.Fatalf("%s store under faults: %v", s.act, err)
		}
		if s.act == "D" && !pr.Completed {
			t.Fatal("final step did not complete")
		}
	}
	fw.verify(t, pid, 11)

	// The TFC saw each forwarding exactly once.
	recs, err := fw.w.tfcClientFor(t, "designer@acme").TFCRecords(pid)
	if err != nil || len(recs) != 5 {
		t.Fatalf("TFC records = %d, %v — want exactly 5", len(recs), err)
	}
}
