// Package httpapi exposes the DRA4WfMS cloud services over HTTP: portal
// servers (store/retrieve documents, worklists, monitoring) and TFC
// servers (process intermediate documents), plus the matching client used
// by AEAs. This is the network substrate the paper's Figure 7 deployment
// implies — participants connect to portals over a public network.
//
// Every request is authenticated with a detached signature: the client
// signs (method, path, date, nonce, SHA-256(body)) with its registered
// private key; servers verify against the shared pki registry and reject
// stale dates and replayed nonces. Confidentiality of the payloads does
// not depend on the transport — DRA4WfMS documents protect themselves —
// but authentication keeps worklists and monitoring data scoped to known
// principals.
package httpapi

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"dra4wfms/internal/pki"
)

// Authentication headers.
const (
	HeaderPrincipal = "X-DRA-Principal"
	HeaderDate      = "X-DRA-Date"
	HeaderNonce     = "X-DRA-Nonce"
	HeaderSignature = "X-DRA-Signature"
)

// MaxClockSkew bounds how stale a signed request may be.
const MaxClockSkew = 5 * time.Minute

// stringToSign canonicalizes the signed request surface. The empty path
// (a bare host URL) normalizes to "/" so clients and servers agree.
func stringToSign(method, path, date, nonce string, body []byte) []byte {
	if path == "" {
		path = "/"
	}
	sum := sha256.Sum256(body)
	return []byte(strings.Join([]string{
		method, path, date, nonce, hex.EncodeToString(sum[:]),
	}, "\n"))
}

// SignRequest attaches the authentication headers to req (whose body bytes
// must be passed explicitly, since http.Request bodies are streams).
func SignRequest(req *http.Request, body []byte, keys *pki.KeyPair, now time.Time) error {
	date := now.UTC().Format(time.RFC3339Nano)
	var nb [16]byte
	if _, err := rand.Read(nb[:]); err != nil {
		return err
	}
	nonce := base64.RawURLEncoding.EncodeToString(nb[:])
	sig, err := keys.Sign(stringToSign(req.Method, req.URL.Path, date, nonce, body))
	if err != nil {
		return err
	}
	req.Header.Set(HeaderPrincipal, keys.Owner)
	req.Header.Set(HeaderDate, date)
	req.Header.Set(HeaderNonce, nonce)
	req.Header.Set(HeaderSignature, base64.StdEncoding.EncodeToString(sig))
	return nil
}

// nonceCache remembers recently seen nonces to block replays within the
// clock-skew window.
type nonceCache struct {
	mu   sync.Mutex
	seen map[string]time.Time
}

func newNonceCache() *nonceCache {
	return &nonceCache{seen: map[string]time.Time{}}
}

// remember records the nonce; it reports false if already present.
func (c *nonceCache) remember(nonce string, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Opportunistic expiry to bound memory.
	if len(c.seen) > 4096 {
		for n, t := range c.seen {
			if now.Sub(t) > 2*MaxClockSkew {
				delete(c.seen, n)
			}
		}
	}
	if _, dup := c.seen[nonce]; dup {
		return false
	}
	c.seen[nonce] = now
	return true
}

// Authenticator verifies signed requests against a registry.
type Authenticator struct {
	Registry *pki.Registry
	Clock    func() time.Time

	nonces *nonceCache
}

// NewAuthenticator creates an Authenticator; clock may be nil.
func NewAuthenticator(reg *pki.Registry, clock func() time.Time) *Authenticator {
	if clock == nil {
		clock = time.Now
	}
	return &Authenticator{Registry: reg, Clock: clock, nonces: newNonceCache()}
}

// Verify checks the request's authentication headers over the given body
// bytes and returns the authenticated principal ID.
func (a *Authenticator) Verify(req *http.Request, body []byte) (string, error) {
	principal := req.Header.Get(HeaderPrincipal)
	date := req.Header.Get(HeaderDate)
	nonce := req.Header.Get(HeaderNonce)
	sigB64 := req.Header.Get(HeaderSignature)
	if principal == "" || date == "" || nonce == "" || sigB64 == "" {
		return "", fmt.Errorf("httpapi: missing authentication headers")
	}
	at, err := time.Parse(time.RFC3339Nano, date)
	if err != nil {
		return "", fmt.Errorf("httpapi: bad date: %w", err)
	}
	now := a.Clock()
	skew := now.Sub(at)
	if skew < 0 {
		skew = -skew
	}
	if skew > MaxClockSkew {
		return "", fmt.Errorf("httpapi: request date outside the ±%v window", MaxClockSkew)
	}
	pub, err := a.Registry.PublicKey(principal)
	if err != nil {
		return "", fmt.Errorf("httpapi: unknown principal %q: %w", principal, err)
	}
	sig, err := base64.StdEncoding.DecodeString(sigB64)
	if err != nil {
		return "", fmt.Errorf("httpapi: bad signature encoding: %w", err)
	}
	if err := pki.Verify(pub, stringToSign(req.Method, req.URL.Path, date, nonce, body), sig); err != nil {
		return "", fmt.Errorf("httpapi: request signature invalid: %w", err)
	}
	if !a.nonces.remember(principal+"|"+nonce, now) {
		return "", fmt.Errorf("httpapi: replayed nonce")
	}
	return principal, nil
}
