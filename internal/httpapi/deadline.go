package httpapi

import (
	"context"
	"net/http"
	"time"
)

// DeadlineHeader carries the request's absolute deadline across HTTP
// hops as an RFC 3339 timestamp with nanoseconds. Like TraceparentHeader
// it is deliberately excluded from request signatures (auth.go signs
// method, path, date, nonce, and body only), so every tier — portal,
// TFC, pool node — can thread the caller's remaining budget downstream
// without re-signing, and an expired request is abandoned *before* the
// RSA work of signature verification is spent on it.
const DeadlineHeader = "X-DRA-Deadline"

// mDeadlineExpired counts requests refused because their propagated
// deadline had already passed on arrival — work shed before any
// signature verification.
var mDeadlineExpired = tel.Counter("http_requests_deadline_expired_total")

// AttachDeadline copies ctx's deadline, if any, onto the outgoing
// request headers so the receiving tier inherits the remaining budget.
func AttachDeadline(ctx context.Context, h http.Header) {
	if dl, ok := ctx.Deadline(); ok {
		h.Set(DeadlineHeader, dl.UTC().Format(time.RFC3339Nano))
	}
}

// ParseDeadline extracts the propagated deadline from request headers.
// A missing or malformed header reports ok=false: deadlines are a
// cooperative optimization, never an authentication surface, so garbage
// is ignored rather than rejected.
func ParseDeadline(h http.Header) (time.Time, bool) {
	v := h.Get(DeadlineHeader)
	if v == "" {
		return time.Time{}, false
	}
	t, err := time.Parse(time.RFC3339Nano, v)
	if err != nil {
		return time.Time{}, false
	}
	return t, true
}
