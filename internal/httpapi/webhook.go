package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dra4wfms/internal/pki"
	"dra4wfms/internal/portal"
	"dra4wfms/internal/relay"
	"dra4wfms/internal/trace"
)

// Webhook notification delivery — the paper's "after a resulting DRA4WfMS
// document is stored, the portal server should inform the participants of
// the next activities". A participant (or a role's shared inbox) registers
// a callback URL over the authenticated API; the portal POSTs a
// portal-signed JSON notification to it whenever one of the participant's
// activities becomes enabled. Receivers verify the same signed-request
// headers clients use, so notifications cannot be forged.
//
// Deliveries go through an internal relay: a bounded worker pool with
// retries, per-destination circuit breakers, and (with a WAL path) an
// outbox that survives portal restarts. A notification that exhausts its
// retry budget lands in the relay's dead-letter queue and is counted as
// failed.

// WebhookDispatcher keeps the URL registry and delivers notifications.
// Configure the public fields before the first Notify; they are frozen
// once the delivery relay starts.
type WebhookDispatcher struct {
	// Keys signs outgoing deliveries under the portal's identity.
	Keys *pki.KeyPair
	// HTTP performs the deliveries (default http.DefaultClient).
	HTTP *http.Client
	// Clock supplies delivery timestamps (default time.Now).
	Clock func() time.Time
	// Timeout bounds one delivery attempt (default 5s).
	Timeout time.Duration
	// WALPath, when set, persists undelivered notifications across
	// restarts (draportal -webhook-wal). Empty keeps the outbox in memory.
	WALPath string
	// RelayConfig tunes retries; zero fields get webhook defaults
	// (3 attempts, short backoff, per-attempt Timeout).
	RelayConfig relay.Config

	mu   sync.Mutex
	urls map[string]string // principal (or "role:<r>") → callback URL
	rly  *relay.Relay
	seq  atomic.Uint64 // distinguishes legitimately repeated notifications
}

// NewWebhookDispatcher creates a dispatcher signing as keys.Owner.
func NewWebhookDispatcher(keys *pki.KeyPair) *WebhookDispatcher {
	return &WebhookDispatcher{Keys: keys, urls: map[string]string{}}
}

// Register binds the principal (or role key) to a callback URL; an empty
// URL unregisters.
func (d *WebhookDispatcher) Register(principal, callbackURL string) error {
	if callbackURL != "" {
		u, err := url.Parse(callbackURL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("httpapi: invalid callback URL %q", callbackURL)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if callbackURL == "" {
		delete(d.urls, principal)
	} else {
		d.urls[principal] = callbackURL
	}
	return nil
}

// URL returns the registered callback for a principal.
func (d *WebhookDispatcher) URL(principal string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	u, ok := d.urls[principal]
	return u, ok
}

// Stats returns (delivered, failed) counters: acknowledged deliveries
// and deliveries that exhausted their retries into the DLQ.
func (d *WebhookDispatcher) Stats() (delivered, failed int) {
	d.mu.Lock()
	rly := d.rly
	d.mu.Unlock()
	if rly == nil {
		return 0, 0
	}
	st := rly.Stats()
	return int(st.Delivered), int(st.DeadLettered)
}

// ensureRelay starts the delivery relay on first use, freezing the
// dispatcher's configuration fields into it.
func (d *WebhookDispatcher) ensureRelay() (*relay.Relay, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.rly != nil {
		return d.rly, nil
	}
	ob, err := relay.OpenOutbox(d.WALPath)
	if err != nil {
		return nil, err
	}
	cfg := d.RelayConfig
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = d.timeout()
	}
	if cfg.Backoff == (relay.BackoffPolicy{}) {
		cfg.Backoff = relay.BackoffPolicy{Base: 25 * time.Millisecond, Cap: 500 * time.Millisecond}
	}
	tr := &HTTPTransport{Keys: d.Keys, HTTP: d.HTTP, Clock: d.Clock}
	d.rly = relay.New(ob, tr, cfg)
	return d.rly, nil
}

// Notify implements the portal.OnNotify contract: the notification is
// journaled and delivered asynchronously to the participant's registered
// URL (if any), with retries and breaker protection. A delivery that
// exhausts its budget is dead-lettered, not lost silently — but the
// worklist remains the source of truth; webhooks are a latency
// optimization.
func (d *WebhookDispatcher) Notify(n portal.Notification) {
	d.NotifyCtx(context.Background(), n)
}

// NotifyCtx is Notify carrying the triggering request's trace context:
// the delivery is journaled with ctx's traceparent, so the asynchronous
// webhook POST (and any retry of it) appears as a relay span of the
// store that enabled the activity.
func (d *WebhookDispatcher) NotifyCtx(ctx context.Context, n portal.Notification) {
	target, ok := d.URL(n.Participant)
	if !ok {
		return
	}
	rly, err := d.ensureRelay()
	if err != nil {
		return
	}
	body, err := json.Marshal(n)
	if err != nil {
		return
	}
	// Identical notifications are legitimate (a loop re-enabling the same
	// activity), so the idempotency key folds in a local sequence number:
	// retries of one Notify share it, distinct Notifies never do.
	keyed := append(strconv.AppendUint(nil, d.seq.Add(1), 10), '|')
	keyed = append(keyed, body...)
	//lint:ignore cryptoerr webhook dispatch is fire-and-forget by contract: an enqueue failure (closed relay, journal write error) must not fail the document store that triggered the notification, and the worklist remains the source of truth
	_, _, _ = rly.EnqueueTraced(target, KindWebhook, relay.IdempotencyKey(KindWebhook, target, keyed), trace.TraceparentFromContext(ctx), body)
}

// Wait blocks until all accepted deliveries have settled.
//
// Deprecated: Notify no longer spawns a goroutine per delivery — a
// bounded relay drains the queue — so Wait is simply a flush of that
// relay, kept for compatibility.
func (d *WebhookDispatcher) Wait() {
	d.mu.Lock()
	rly := d.rly
	d.mu.Unlock()
	if rly != nil {
		rly.Flush()
	}
}

// Relay exposes the delivery relay (DLQ inspection, stats); nil before
// the first Notify.
func (d *WebhookDispatcher) Relay() *relay.Relay {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rly
}

// Close stops the delivery relay; with a WAL, undelivered notifications
// survive for the next start.
func (d *WebhookDispatcher) Close() error {
	d.mu.Lock()
	rly := d.rly
	d.mu.Unlock()
	if rly == nil {
		return nil
	}
	return rly.Close()
}

func (d *WebhookDispatcher) timeout() time.Duration {
	if d.Timeout > 0 {
		return d.Timeout
	}
	return 5 * time.Second
}

// --- server-side registration endpoint -------------------------------------------

// webhookRequest is the PUT /v1/webhook body.
type webhookRequest struct {
	// URL is the callback; empty unregisters.
	URL string `json:"url"`
	// Role optionally registers for a role inbox ("role:<r>" key) instead
	// of the caller's own principal; the caller must hold the role.
	Role string `json:"role,omitempty"`
}

// handleWebhook registers the authenticated caller's callback URL.
func (s *PortalServer) handleWebhook(w http.ResponseWriter, r *http.Request, principal string, body []byte) {
	if s.Webhooks == nil {
		http.Error(w, "webhooks not enabled on this portal", http.StatusNotImplemented)
		return
	}
	var req webhookRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := principal
	if req.Role != "" {
		id, err := s.Portal.Registry.Identity(principal)
		if err != nil || !id.HasRole(req.Role) {
			http.Error(w, "caller does not hold the requested role", http.StatusForbidden)
			return
		}
		key = "role:" + req.Role
	}
	if err := s.Webhooks.Register(key, req.URL); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]string{"registered": key, "url": req.URL})
}

// RegisterWebhook is the client call for PUT /v1/webhook; role may be "".
func (c *Client) RegisterWebhook(callbackURL, role string) error {
	body, err := json.Marshal(webhookRequest{URL: callbackURL, Role: role})
	if err != nil {
		return err
	}
	_, _, err = c.do(http.MethodPut, "/v1/webhook", body)
	return err
}
