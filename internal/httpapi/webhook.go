package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"dra4wfms/internal/pki"
	"dra4wfms/internal/portal"
)

// Webhook notification delivery — the paper's "after a resulting DRA4WfMS
// document is stored, the portal server should inform the participants of
// the next activities". A participant (or a role's shared inbox) registers
// a callback URL over the authenticated API; the portal POSTs a
// portal-signed JSON notification to it whenever one of the participant's
// activities becomes enabled. Receivers verify the same signed-request
// headers clients use, so notifications cannot be forged.

// WebhookDispatcher keeps the URL registry and delivers notifications.
type WebhookDispatcher struct {
	// Keys signs outgoing deliveries under the portal's identity.
	Keys *pki.KeyPair
	// HTTP performs the deliveries (default http.DefaultClient).
	HTTP *http.Client
	// Clock supplies delivery timestamps (default time.Now).
	Clock func() time.Time
	// Timeout bounds one delivery attempt (default 5s).
	Timeout time.Duration

	mu   sync.Mutex
	urls map[string]string // principal (or "role:<r>") → callback URL
	// failures counts deliveries that could not be completed.
	failures int
	// delivered counts successful deliveries.
	delivered int
	wg        sync.WaitGroup
}

// NewWebhookDispatcher creates a dispatcher signing as keys.Owner.
func NewWebhookDispatcher(keys *pki.KeyPair) *WebhookDispatcher {
	return &WebhookDispatcher{Keys: keys, urls: map[string]string{}}
}

// Register binds the principal (or role key) to a callback URL; an empty
// URL unregisters.
func (d *WebhookDispatcher) Register(principal, callbackURL string) error {
	if callbackURL != "" {
		u, err := url.Parse(callbackURL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("httpapi: invalid callback URL %q", callbackURL)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if callbackURL == "" {
		delete(d.urls, principal)
	} else {
		d.urls[principal] = callbackURL
	}
	return nil
}

// URL returns the registered callback for a principal.
func (d *WebhookDispatcher) URL(principal string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	u, ok := d.urls[principal]
	return u, ok
}

// Stats returns (delivered, failed) counters.
func (d *WebhookDispatcher) Stats() (delivered, failed int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.delivered, d.failures
}

// Notify implements the portal.OnNotify contract: it delivers the
// notification asynchronously to the participant's registered URL (if
// any). Delivery failures are counted, not retried — the worklist remains
// the source of truth; webhooks are a latency optimization.
func (d *WebhookDispatcher) Notify(n portal.Notification) {
	target, ok := d.URL(n.Participant)
	if !ok {
		return
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		if err := d.deliver(target, n); err != nil {
			d.mu.Lock()
			d.failures++
			d.mu.Unlock()
			return
		}
		d.mu.Lock()
		d.delivered++
		d.mu.Unlock()
	}()
}

// Wait blocks until all in-flight deliveries finish (tests, shutdown).
func (d *WebhookDispatcher) Wait() { d.wg.Wait() }

func (d *WebhookDispatcher) deliver(target string, n portal.Notification) error {
	body, err := json.Marshal(n)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", ContentJSON)
	clock := d.Clock
	if clock == nil {
		clock = time.Now
	}
	if err := SignRequest(req, body, d.Keys, clock()); err != nil {
		return err
	}
	httpc := d.HTTP
	if httpc == nil {
		httpc = &http.Client{Timeout: d.timeout()}
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("httpapi: webhook %s: %s", target, resp.Status)
	}
	return nil
}

func (d *WebhookDispatcher) timeout() time.Duration {
	if d.Timeout > 0 {
		return d.Timeout
	}
	return 5 * time.Second
}

// --- server-side registration endpoint -------------------------------------------

// webhookRequest is the PUT /v1/webhook body.
type webhookRequest struct {
	// URL is the callback; empty unregisters.
	URL string `json:"url"`
	// Role optionally registers for a role inbox ("role:<r>" key) instead
	// of the caller's own principal; the caller must hold the role.
	Role string `json:"role,omitempty"`
}

// handleWebhook registers the authenticated caller's callback URL.
func (s *PortalServer) handleWebhook(w http.ResponseWriter, r *http.Request, principal string, body []byte) {
	if s.Webhooks == nil {
		http.Error(w, "webhooks not enabled on this portal", http.StatusNotImplemented)
		return
	}
	var req webhookRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := principal
	if req.Role != "" {
		id, err := s.Portal.Registry.Identity(principal)
		if err != nil || !id.HasRole(req.Role) {
			http.Error(w, "caller does not hold the requested role", http.StatusForbidden)
			return
		}
		key = "role:" + req.Role
	}
	if err := s.Webhooks.Register(key, req.URL); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]string{"registered": key, "url": req.URL})
}

// RegisterWebhook is the client call for PUT /v1/webhook; role may be "".
func (c *Client) RegisterWebhook(callbackURL, role string) error {
	body, err := json.Marshal(webhookRequest{URL: callbackURL, Role: role})
	if err != nil {
		return err
	}
	_, _, err = c.do(http.MethodPut, "/v1/webhook", body)
	return err
}
