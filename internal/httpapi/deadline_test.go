package httpapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dra4wfms/internal/testenv"
)

func TestDeadlineHeaderRoundtrip(t *testing.T) {
	h := http.Header{}
	dl := time.Date(2026, 8, 9, 12, 0, 0, 123456789, time.UTC)
	ctx, cancel := context.WithDeadline(context.Background(), dl)
	defer cancel()
	AttachDeadline(ctx, h)
	got, ok := ParseDeadline(h)
	if !ok {
		t.Fatal("attached deadline did not parse back")
	}
	if !got.Equal(dl) {
		t.Fatalf("roundtrip deadline %v, want %v", got, dl)
	}

	if _, ok := ParseDeadline(http.Header{}); ok {
		t.Fatal("missing header parsed")
	}
	bad := http.Header{}
	bad.Set(DeadlineHeader, "not-a-time")
	if _, ok := ParseDeadline(bad); ok {
		t.Fatal("garbage header parsed")
	}
	// No deadline on the context → no header.
	h2 := http.Header{}
	AttachDeadline(context.Background(), h2)
	if h2.Get(DeadlineHeader) != "" {
		t.Fatal("header attached without a context deadline")
	}
}

func TestInstrumentShedsExpiredDeadline(t *testing.T) {
	var called, sawDeadline atomic.Bool
	h := instrument("GET /v1/test", func(w http.ResponseWriter, r *http.Request) {
		called.Store(true)
		_, ok := r.Context().Deadline()
		sawDeadline.Store(ok)
	})

	// Expired deadline: 504 before the handler (and so before any
	// signature verification a real route would do).
	req := httptest.NewRequest(http.MethodGet, "/v1/test", nil)
	req.Header.Set(DeadlineHeader, time.Now().Add(-time.Second).UTC().Format(time.RFC3339Nano))
	rec := httptest.NewRecorder()
	h(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline answered %d, want 504", rec.Code)
	}
	if called.Load() {
		t.Fatal("handler ran despite expired deadline")
	}

	// Live deadline: threaded into the request context.
	req = httptest.NewRequest(http.MethodGet, "/v1/test", nil)
	req.Header.Set(DeadlineHeader, time.Now().Add(time.Minute).UTC().Format(time.RFC3339Nano))
	rec = httptest.NewRecorder()
	h(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("live deadline answered %d, want 200", rec.Code)
	}
	if !called.Load() || !sawDeadline.Load() {
		t.Fatal("handler did not receive the propagated deadline as a ctx deadline")
	}

	// Garbage header: ignored, request served.
	req = httptest.NewRequest(http.MethodGet, "/v1/test", nil)
	req.Header.Set(DeadlineHeader, "yesterday-ish")
	rec = httptest.NewRecorder()
	h(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("garbage deadline answered %d, want 200", rec.Code)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	if d, ok := parseRetryAfter("3", now); !ok || d != 3*time.Second {
		t.Fatalf("seconds form: %v %v", d, ok)
	}
	date := now.Add(90 * time.Second)
	if d, ok := parseRetryAfter(date.Format(http.TimeFormat), now); !ok || d != 90*time.Second {
		t.Fatalf("date form: %v %v", d, ok)
	}
	if d, ok := parseRetryAfter(now.Add(-time.Minute).Format(http.TimeFormat), now); !ok || d != 0 {
		t.Fatalf("past date should clamp to 0: %v %v", d, ok)
	}
	if _, ok := parseRetryAfter("", now); ok {
		t.Fatal("empty value parsed")
	}
	if _, ok := parseRetryAfter("-5", now); ok {
		t.Fatal("negative seconds parsed")
	}
	if _, ok := parseRetryAfter("soonish", now); ok {
		t.Fatal("garbage parsed")
	}
}

// shedServer answers 429 + Retry-After for the first n requests, then 200.
func shedServer(t *testing.T, shed int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= int64(shed) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`[]`))
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func TestClientHonorsRetryAfter(t *testing.T) {
	env := testenv.Fig9(0)
	srv, hits := shedServer(t, 2, "0")
	c := NewClient(srv.URL, env.KeyOf("alice@acme"))
	if _, _, err := c.doCtx(context.Background(), http.MethodGet, "/v1/worklist", nil); err != nil {
		t.Fatalf("shed-then-serve request failed: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 sheds + success)", got)
	}
}

func TestClientStopsRetryingWithoutRetryAfter(t *testing.T) {
	env := testenv.Fig9(0)
	srv, hits := shedServer(t, 100, "")
	c := NewClient(srv.URL, env.KeyOf("alice@acme"))
	_, _, err := c.doCtx(context.Background(), http.MethodGet, "/v1/worklist", nil)
	if err == nil {
		t.Fatal("want error from unending 429s")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("client retried %d times without server guidance, want a single attempt", got)
	}
}

func TestClientRetryRespectsDeadline(t *testing.T) {
	env := testenv.Fig9(0)
	srv, hits := shedServer(t, 100, "30")
	c := NewClient(srv.URL, env.KeyOf("alice@acme"))
	c.Timeout = 300 * time.Millisecond
	start := time.Now()
	_, _, err := c.doCtx(context.Background(), http.MethodGet, "/v1/worklist", nil)
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("want the final 429 surfaced, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("client waited %v despite a 300ms budget that cannot fit a 30s Retry-After", elapsed)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("client burned %d attempts, want 1 — the wait cannot fit the deadline", got)
	}
}

func TestClientRetryCapped(t *testing.T) {
	env := testenv.Fig9(0)
	srv, hits := shedServer(t, 100, "0")
	c := NewClient(srv.URL, env.KeyOf("alice@acme"))
	_, _, err := c.doCtx(context.Background(), http.MethodGet, "/v1/worklist", nil)
	if err == nil {
		t.Fatal("want error from unending 429s")
	}
	if got := hits.Load(); got != int64(maxShedRetries)+1 {
		t.Fatalf("server saw %d attempts, want %d", got, maxShedRetries+1)
	}
}
