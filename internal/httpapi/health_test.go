package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dra4wfms/internal/relay"
)

func probeStatus(t *testing.T, url string) (int, map[string]string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestProbesLifecycle(t *testing.T) {
	p := NewProbes()
	mux := http.NewServeMux()
	registerObservability(mux, false, p)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Liveness holds through every phase.
	if code, body := probeStatus(t, srv.URL+"/v1/healthz"); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, body)
	}

	// Fresh probes: recovery not complete yet.
	if code, body := probeStatus(t, srv.URL+"/v1/readyz"); code != http.StatusServiceUnavailable || body["reason"] == "" {
		t.Fatalf("readyz before recovery = %d %v, want 503 with reason", code, body)
	}

	p.SetReady(true)
	if code, _ := probeStatus(t, srv.URL+"/v1/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after SetReady = %d, want 200", code)
	}

	// A failing check makes the server unready with the check's error.
	var checkErr error = fmt.Errorf("backlog too deep")
	p.AddCheck("relay", func() error { return checkErr })
	if code, body := probeStatus(t, srv.URL+"/v1/readyz"); code != http.StatusServiceUnavailable ||
		body["reason"] != "check relay: backlog too deep" {
		t.Fatalf("readyz with failing check = %d %v", code, body)
	}
	checkErr = nil
	if code, _ := probeStatus(t, srv.URL+"/v1/readyz"); code != http.StatusOK {
		t.Fatal("readyz did not recover when the check healed")
	}

	// Draining wins over everything.
	p.StartDraining()
	if code, body := probeStatus(t, srv.URL+"/v1/readyz"); code != http.StatusServiceUnavailable ||
		body["reason"] != "draining: shutdown in progress" {
		t.Fatalf("readyz while draining = %d %v", code, body)
	}
	if code, _ := probeStatus(t, srv.URL+"/v1/healthz"); code != http.StatusOK {
		t.Fatal("healthz failed during drain")
	}
}

func TestReadyzWithoutProbesAlwaysReady(t *testing.T) {
	mux := http.NewServeMux()
	registerObservability(mux, false, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	if code, body := probeStatus(t, srv.URL+"/v1/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz without probes = %d %v, want always-ready", code, body)
	}
}

func TestRelaySaturationCheckNilTolerant(t *testing.T) {
	if err := RelaySaturationCheck(nil, 10)(); err != nil {
		t.Fatalf("nil getter: %v", err)
	}
	// The webhook dispatcher's relay is created lazily; before the first
	// notification the getter returns nil and the check must pass.
	if err := RelaySaturationCheck(func() *relay.Relay { return nil }, 10)(); err != nil {
		t.Fatalf("nil relay: %v", err)
	}
}

// TestServeGracefulDrain: a slow in-flight request must complete after the
// context is canceled, and Serve must return nil (clean drain).
func TestServeGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var drained bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("done"))
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- ServeListener(ctx, ln, mux, 5*time.Second, func() { drained = true })
	}()

	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("slow request = %d", resp.StatusCode)
			}
		}
		reqDone <- err
	}()

	<-started
	cancel() // SIGTERM equivalent: shutdown begins with the request in flight
	select {
	case err := <-serveDone:
		t.Fatalf("Serve returned %v before the in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)

	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve after drain = %v, want nil", err)
	}
	if !drained {
		t.Fatal("onDrain hook did not run")
	}
}

// TestServeGraceDeadline: when in-flight work outlives the grace window,
// Serve returns the deadline error instead of hanging.
func TestServeGraceDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stuck", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-block
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- ServeListener(ctx, ln, mux, 30*time.Millisecond, nil)
	}()
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	cancel()
	if err := <-serveDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Serve past grace deadline = %v, want DeadlineExceeded", err)
	}
}

func TestListenAndServeTreatsServerClosedAsClean(t *testing.T) {
	// Occupy a port so ListenAndServe fails fast: real listener errors
	// must still surface...
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := ListenAndServe(ln.Addr().String(), http.NewServeMux()); err == nil {
		t.Fatal("ListenAndServe on an occupied port returned nil")
	}
	// ...while the graceful-shutdown sentinel is filtered by the same
	// helper ServeListener delegates to (exercised in TestServeGracefulDrain,
	// which asserts a nil return after Shutdown).
}
