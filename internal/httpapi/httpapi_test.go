package httpapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/monitor"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/portal"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/tfc"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmlenc"
)

var now = time.Date(2026, 7, 6, 16, 0, 0, 0, time.UTC)

type world struct {
	env       *testenv.Env
	portalSrv *httptest.Server
	tfcSrv    *httptest.Server
	agents    map[string]*aea.AEA
	clock     func() time.Time
}

func newWorld(t *testing.T) *world {
	t.Helper()
	env := testenv.Fig9(0)
	cluster, err := pool.NewCluster([]string{"rs1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	table, err := portal.CreateTable(cluster)
	if err != nil {
		t.Fatal(err)
	}
	var tickMu sync.Mutex
	tick := now
	clock := func() time.Time {
		tickMu.Lock()
		defer tickMu.Unlock()
		tick = tick.Add(time.Second)
		return tick
	}

	p := portal.New("portal-1", env.Registry, table, clock)
	mon := monitor.New(table)
	auth := NewAuthenticator(env.Registry, clock)
	ps := httptest.NewServer(NewPortalServer(p, mon, auth).Handler())
	t.Cleanup(ps.Close)

	srv := tfc.New(env.KeyOf("tfc@cloud"), env.Registry, clock)
	ts := httptest.NewServer(NewTFCServer(srv, NewAuthenticator(env.Registry, clock)).Handler())
	t.Cleanup(ts.Close)

	agents := map[string]*aea.AEA{}
	for act, pid := range wfdef.Fig9Participants {
		agents[act] = aea.New(env.KeyOf(pid), env.Registry)
	}
	return &world{env: env, portalSrv: ps, tfcSrv: ts, agents: agents, clock: clock}
}

func (w *world) clientFor(t *testing.T, id string) *Client {
	t.Helper()
	c := NewClient(w.portalSrv.URL, w.env.KeyOf(id))
	c.Clock = w.clock
	return c
}

func (w *world) tfcClientFor(t *testing.T, id string) *Client {
	t.Helper()
	c := NewClient(w.tfcSrv.URL, w.env.KeyOf(id))
	c.Clock = w.clock
	return c
}

func TestEndToEndOverHTTPBasicModel(t *testing.T) {
	w := newWorld(t)
	def := wfdef.Fig9A()
	doc, err := document.New(def, w.env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	pid := doc.ProcessID()

	designer := w.clientFor(t, "designer@acme")
	notes, err := designer.StoreInitial(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 || notes[0].Activity != "A" {
		t.Fatalf("initial notes = %v", notes)
	}

	steps := []struct {
		act    string
		inputs aea.Inputs
	}{
		{"A", aea.Inputs{"request": "r"}},
		{"B1", aea.Inputs{"techReview": "ok"}},
		{"B2", aea.Inputs{"budgetReview": "ok"}},
		{"C", aea.Inputs{"summary": "s"}},
		{"D", aea.Inputs{"accept": "true"}},
	}
	for _, s := range steps {
		participant := wfdef.Fig9Participants[s.act]
		cli := w.clientFor(t, participant)

		// The participant's worklist names the activity.
		items, err := cli.Worklist()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, it := range items {
			if it.ProcessID == pid && it.Activity == s.act {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s missing from %s worklist: %v", s.act, participant, items)
		}

		cur, err := cli.Retrieve(pid)
		if err != nil {
			t.Fatal(err)
		}
		out, err := w.agents[s.act].Execute(cur, s.act, s.inputs, now)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Store(out.Doc); err != nil {
			t.Fatal(err)
		}
	}

	// Monitoring over HTTP.
	st, err := designer.Status(pid)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "completed" || len(st.Steps) != 5 {
		t.Fatalf("status = %+v", st)
	}
	ids, err := designer.Processes("completed")
	if err != nil || len(ids) != 1 || ids[0] != pid {
		t.Fatalf("processes = %v, %v", ids, err)
	}
	stats, err := designer.Statistics()
	if err != nil || stats.InstancesByState["completed"] != 1 {
		t.Fatalf("stats = %+v, %v", stats, err)
	}
	// Final document fetched over HTTP verifies.
	final, err := designer.Retrieve(pid)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := final.VerifyAll(w.env.Registry); err != nil || n != 6 {
		t.Fatalf("VerifyAll = %d, %v", n, err)
	}
}

func TestEndToEndOverHTTPAdvancedModel(t *testing.T) {
	w := newWorld(t)
	def := wfdef.Fig9B()
	doc, err := document.New(def, w.env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	pid := doc.ProcessID()
	designer := w.clientFor(t, "designer@acme")
	if _, err := designer.StoreInitial(doc); err != nil {
		t.Fatal(err)
	}

	steps := []struct {
		act    string
		inputs aea.Inputs
	}{
		{"A", aea.Inputs{"request": "r"}},
		{"B1", aea.Inputs{"techReview": "ok"}},
		{"B2", aea.Inputs{"budgetReview": "ok"}},
		{"C", aea.Inputs{"summary": "s"}},
		{"D", aea.Inputs{"accept": "true"}},
	}
	for _, s := range steps {
		participant := wfdef.Fig9Participants[s.act]
		cli := w.clientFor(t, participant)
		cur, err := cli.Retrieve(pid)
		if err != nil {
			t.Fatal(err)
		}
		interm, err := w.agents[s.act].ExecuteToTFC(cur, s.act, s.inputs)
		if err != nil {
			t.Fatal(err)
		}
		pr, outDoc, err := w.tfcClientFor(t, participant).ProcessViaTFC(interm)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Timestamp.IsZero() {
			t.Fatal("no timestamp in TFC response")
		}
		if _, err := cli.Store(outDoc); err != nil {
			t.Fatal(err)
		}
		if s.act == "D" && !pr.Completed {
			t.Fatal("final step did not complete")
		}
	}

	// TFC forwarding records over HTTP.
	recs, err := w.tfcClientFor(t, "designer@acme").TFCRecords(pid)
	if err != nil || len(recs) != 5 {
		t.Fatalf("records = %v, %v", recs, err)
	}
	if all, err := w.tfcClientFor(t, "designer@acme").TFCRecords(""); err != nil || len(all) != 5 {
		t.Fatalf("all records = %d, %v", len(all), err)
	}
}

func TestAuthenticationEnforced(t *testing.T) {
	w := newWorld(t)

	// Unsigned request.
	resp, err := http.Get(w.portalSrv.URL + "/v1/worklist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unsigned request: %s", resp.Status)
	}

	// Unknown principal (valid signature under an unregistered key).
	ghost := NewClient(w.portalSrv.URL, w.env.KeyOf("ghost@nowhere"))
	ghost.Clock = w.clock
	if _, err := ghost.Worklist(); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("ghost worklist: %v", err)
	}

	// Wrong key for claimed principal: sign with ghost's key but claim alice.
	forged := NewClient(w.portalSrv.URL, w.env.KeyOf("ghost@nowhere"))
	forged.Clock = w.clock
	req, _ := http.NewRequest(http.MethodGet, w.portalSrv.URL+"/v1/worklist", nil)
	if err := SignRequest(req, nil, w.env.KeyOf("ghost@nowhere"), w.clock()); err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderPrincipal, wfdef.Fig9Participants["A"])
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("impersonation: %s", resp.Status)
	}
}

func TestReplayAndSkewRejected(t *testing.T) {
	w := newWorld(t)
	alice := wfdef.Fig9Participants["A"]

	// Replay: re-send the exact same signed request.
	req, _ := http.NewRequest(http.MethodGet, w.portalSrv.URL+"/v1/worklist", nil)
	if err := SignRequest(req, nil, w.env.KeyOf(alice), w.clock()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first send: %s", resp.Status)
	}
	req2, _ := http.NewRequest(http.MethodGet, w.portalSrv.URL+"/v1/worklist", nil)
	req2.Header = req.Header.Clone()
	resp, err = http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("replayed request accepted: %s", resp.Status)
	}

	// Stale date.
	req3, _ := http.NewRequest(http.MethodGet, w.portalSrv.URL+"/v1/worklist", nil)
	if err := SignRequest(req3, nil, w.env.KeyOf(alice), w.clock().Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("stale request accepted: %s", resp.Status)
	}
}

func TestTamperedBodyRejected(t *testing.T) {
	w := newWorld(t)
	def := wfdef.Fig9A()
	doc, _ := document.New(def, w.env.KeyOf("designer@acme"), testenv.ProcessID(), now)

	// Sign over the real body, then send a different one.
	body := doc.Bytes()
	req, _ := http.NewRequest(http.MethodPost, w.portalSrv.URL+"/v1/documents/initial",
		strings.NewReader(string(body)+" "))
	if err := SignRequest(req, body, w.env.KeyOf("designer@acme"), w.clock()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("body tamper accepted: %s", resp.Status)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	w := newWorld(t)
	cli := w.clientFor(t, wfdef.Fig9Participants["A"])

	// Unknown process → 404.
	if _, err := cli.Retrieve("ghost"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("retrieve ghost: %v", err)
	}
	if _, err := cli.Status("ghost"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("status ghost: %v", err)
	}
	// Bad XML body → 400.
	if _, _, err := cli.do(http.MethodPost, "/v1/documents", []byte("not-xml")); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Fatalf("bad body: %v", err)
	}
	// Bad state filter → 400.
	if _, err := cli.Processes("bogus"); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("bad state: %v", err)
	}
	// Tampered document → 409 (portal refuses).
	doc, _ := document.New(wfdef.Fig9A(), w.env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	doc.WorkflowElement().SetAttr("Name", "evil")
	if _, err := cli.Store(doc); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("tampered store: %v", err)
	}
}

func TestStoreInitialReplayOverHTTP(t *testing.T) {
	w := newWorld(t)
	doc, _ := document.New(wfdef.Fig9A(), w.env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	cli := w.clientFor(t, "designer@acme")
	if _, err := cli.StoreInitial(doc); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.StoreInitial(doc); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("replayed initial: %v", err)
	}
}

func TestConcealedWorkflowOverHTTP(t *testing.T) {
	// Figure 4 over the wire: the initial document is built with the
	// condition vault, participants route via the HTTP TFC, predicates
	// never appear in any payload the participants see.
	env := testenv.Fig4(0)
	cluster, err := pool.NewCluster([]string{"rs1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	table, err := portal.CreateTable(cluster)
	if err != nil {
		t.Fatal(err)
	}
	tick := now
	clock := func() time.Time { tick = tick.Add(time.Second); return tick }
	p := portal.New("portal-1", env.Registry, table, clock)
	ps := httptest.NewServer(NewPortalServer(p, monitor.New(table), NewAuthenticator(env.Registry, clock)).Handler())
	t.Cleanup(ps.Close)
	srv := tfc.New(env.KeyOf("tfc@cloud"), env.Registry, clock)
	ts := httptest.NewServer(NewTFCServer(srv, NewAuthenticator(env.Registry, clock)).Handler())
	t.Cleanup(ts.Close)

	def := wfdef.Fig4()
	fp := wfdef.Fig4Participants
	tfcPub, _ := env.Registry.PublicKey("tfc@cloud")
	doc, err := document.NewConcealed(def, env.KeyOf("designer@p0"), testenv.ProcessID(), now,
		xmlenc.Recipient{ID: "tfc@cloud", Key: tfcPub})
	if err != nil {
		t.Fatal(err)
	}
	pid := doc.ProcessID()
	designer := NewClient(ps.URL, env.KeyOf("designer@p0"))
	designer.Clock = clock
	if _, err := designer.StoreInitial(doc); err != nil {
		t.Fatal(err)
	}

	steps := []struct {
		act, who string
		inputs   aea.Inputs
	}{
		{"A1", fp.Peter, aea.Inputs{"X": "1500"}},
		{"A2", fp.Tony, aea.Inputs{"Y": "dossier"}},
		{"A3", fp.Amy, aea.Inputs{"reviewed": "true"}},
		{"A4", fp.John, aea.Inputs{"highResult": "approved"}},
	}
	for _, s := range steps {
		cli := NewClient(ps.URL, env.KeyOf(s.who))
		cli.Clock = clock
		cur, err := cli.Retrieve(pid)
		if err != nil {
			t.Fatalf("%s retrieve: %v", s.act, err)
		}
		// The document a participant holds must not leak the predicates.
		if raw := string(cur.Bytes()); strings.Contains(raw, "X &gt; 1000") || strings.Contains(raw, "X > 1000") {
			t.Fatal("predicate leaked in routed document")
		}
		agent := aea.New(env.KeyOf(s.who), env.Registry)
		interm, err := agent.ExecuteToTFC(cur, s.act, s.inputs)
		if err != nil {
			t.Fatalf("%s execute: %v", s.act, err)
		}
		tcli := NewClient(ts.URL, env.KeyOf(s.who))
		tcli.Clock = clock
		pr, outDoc, err := tcli.ProcessViaTFC(interm)
		if err != nil {
			t.Fatalf("%s tfc: %v", s.act, err)
		}
		if s.act == "A3" && (len(pr.Next) != 1 || pr.Next[0] != "A4") {
			t.Fatalf("concealed routing chose %v", pr.Next)
		}
		if _, err := cli.Store(outDoc); err != nil {
			t.Fatal(err)
		}
	}
	st, err := designer.Status(pid)
	if err != nil || st.State != "completed" {
		t.Fatalf("status = %+v, %v", st, err)
	}
}

func TestTemplateCatalogOverHTTP(t *testing.T) {
	w := newWorld(t)
	designer := w.clientFor(t, "designer@acme")

	tpl, err := document.SignTemplate(wfdef.Fig9A(), w.env.KeyOf("designer@acme"))
	if err != nil {
		t.Fatal(err)
	}
	name, err := designer.StoreTemplate(tpl)
	if err != nil || name != "fig9-review" {
		t.Fatalf("StoreTemplate = %q, %v", name, err)
	}

	alice := w.clientFor(t, wfdef.Fig9Participants["A"])
	cat, err := alice.Templates()
	if err != nil || cat["fig9-review"] != "designer@acme" {
		t.Fatalf("Templates = %v, %v", cat, err)
	}
	def, err := alice.Template("fig9-review", w.env.Registry)
	if err != nil || def.Name != "fig9-review" || len(def.Activities) != 5 {
		t.Fatalf("Template = %+v, %v", def, err)
	}
	if _, err := alice.Template("nope", w.env.Registry); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown template: %v", err)
	}
	// Tampered template upload → 409.
	forged := tpl.Clone()
	forged.Find("Activity").SetAttr("Participant", "mallory@evil")
	if _, err := designer.StoreTemplate(forged); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("tampered template: %v", err)
	}
}
