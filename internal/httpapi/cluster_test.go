package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dra4wfms/internal/pool"
	"dra4wfms/internal/poolcluster"
	"dra4wfms/internal/relay"
)

// newPoolNode builds an in-process pool node with the standard document
// families, served over a live HTTP listener, plus the RemoteNode handle
// a coordinator would hold.
func newPoolNode(t *testing.T, id string) (*poolcluster.Node, *httptest.Server, *RemoteNode) {
	t.Helper()
	cl, err := pool.NewCluster([]string{id}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := cl.CreateTable("docs",
		pool.FamilySpec{Name: "doc", MaxVersions: 3},
		pool.FamilySpec{Name: "meta", MaxVersions: 1})
	if err != nil {
		t.Fatal(err)
	}
	node := poolcluster.NewNode(id, tbl)
	srv := httptest.NewServer(NewPoolNodeServer(node).Handler())
	t.Cleanup(srv.Close)
	remote := NewRemoteNode(id, srv.URL)
	remote.Client = srv.Client()
	return node, srv, remote
}

func fastClusterConfig() poolcluster.Config {
	return poolcluster.Config{
		Replicas:   2,
		Boundaries: []string{"e", "j", "o", "t"},
		Relay: relay.Config{
			Backoff: relay.BackoffPolicy{Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond},
			Breaker: relay.BreakerPolicy{Threshold: 1000, Cooldown: 10 * time.Millisecond},
		},
	}
}

// TestRemoteNodeClusterRoundTrip drives a whole cluster through the HTTP
// plane: three drapool-shaped servers, RemoteNode handles, replicated
// writes, read-your-writes reads, scans, deletes — then kills one node's
// listener mid-run and checks writes keep succeeding and the survivors
// converge. This is the wire-level twin of the in-process tests in
// internal/poolcluster.
func TestRemoteNodeClusterRoundTrip(t *testing.T) {
	nodes := make(map[string]*poolcluster.Node)
	servers := make(map[string]*httptest.Server)
	var refs []poolcluster.NodeRef
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("n%d", i)
		node, srv, remote := newPoolNode(t, id)
		nodes[id] = node
		servers[id] = srv
		refs = append(refs, remote)
	}
	c, err := poolcluster.New(refs, fastClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s := c.NewSession()
	const n = 60
	for i := 0; i < n; i++ {
		row := fmt.Sprintf("%c-%05d", 'a'+i%20, i)
		if err := s.Put(row, "doc", "content", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %s: %v", row, err)
		}
		got, ok := s.Get(row, "doc", "content")
		if !ok || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("read-your-writes over HTTP violated at %s: got %q ok=%v", row, got, ok)
		}
	}
	if kvs := s.Scan(pool.ScanOptions{Prefix: "a-", Family: "doc"}); len(kvs) != 3 {
		t.Fatalf("scan prefix a- = %d cells, want 3", len(kvs))
	}
	if err := s.Delete("a-00000", "doc", "content"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, ok := s.Get("a-00000", "doc", "content"); ok {
		t.Fatal("deleted cell still visible")
	}

	// Kill the node that owns the next row's region: the listener closes,
	// every RPC to it becomes a transport error, and the coordinator must
	// classify that as ErrNodeDown and fail over.
	killRow := "b-90001"
	_, victim := c.PrimaryFor(killRow)
	servers[victim].Close()
	for i := 0; i < 40; i++ {
		row := fmt.Sprintf("b-9%04d", i)
		if err := s.Put(row, "doc", "content", []byte("post-kill")); err != nil {
			t.Fatalf("put %s after killing %s: %v", row, victim, err)
		}
		got, ok := s.Get(row, "doc", "content")
		if !ok || string(got) != "post-kill" {
			t.Fatalf("read-your-writes after failover violated at %s", row)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := c.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	for _, nv := range c.Status().Nodes {
		if nv.ID == victim {
			if nv.Alive {
				t.Fatalf("killed node %s still marked alive", victim)
			}
			if nv.Primaries != 0 {
				t.Fatalf("killed node %s still leads %d regions", victim, nv.Primaries)
			}
		}
	}
}

// TestRemoteNodeErrorClassification pins the contract failover depends
// on: transport failures and 5xx wrap poolcluster.ErrNodeDown (suspect +
// retry), application rejections come back relay.Permanent (dead-letter,
// never retried).
func TestRemoteNodeErrorClassification(t *testing.T) {
	node, srv, remote := newPoolNode(t, "n1")

	// A down node answers 503, which must round-trip to ErrNodeDown.
	node.Down()
	err := remote.Apply(context.Background(), poolcluster.Record{Region: "region-0000", Seq: 1})
	if !errors.Is(err, poolcluster.ErrNodeDown) {
		t.Fatalf("apply to down node = %v, want ErrNodeDown", err)
	}
	if relay.IsPermanent(err) {
		t.Fatalf("down-node error classified permanent: %v", err)
	}
	node.Up()

	// A structurally invalid record (zero seq) is an application
	// rejection: permanent, and NOT a liveness verdict.
	err = remote.Apply(context.Background(), poolcluster.Record{Region: "region-0000", Seq: 0})
	if err == nil || !relay.IsPermanent(err) {
		t.Fatalf("bad-frame apply = %v, want permanent", err)
	}
	if errors.Is(err, poolcluster.ErrNodeDown) {
		t.Fatalf("bad-frame apply misclassified as node-down: %v", err)
	}

	// A dead listener is a transport failure → ErrNodeDown.
	srv.Close()
	if _, err := remote.AppliedSeq("region-0000"); !errors.Is(err, poolcluster.ErrNodeDown) {
		t.Fatalf("applied-seq against closed listener = %v, want ErrNodeDown", err)
	}
}

// TestRemoteNodeSnapshotImport checks the bulk path survives the wire,
// including versions (convergence depends on byte- and version-identical
// replicas).
func TestRemoteNodeSnapshotImport(t *testing.T) {
	_, _, src := newPoolNode(t, "src")
	_, _, dst := newPoolNode(t, "dst")

	frame1, err := pool.EncodeMutationFrame(1, pool.Mutation{KV: pool.KeyValue{
		Row: "a-1", Family: "doc", Qualifier: "content", Cell: pool.Cell{Value: []byte("x"), Version: 7}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Apply(context.Background(), poolcluster.Record{Region: "r", Seq: 1, Frame: frame1}); err != nil {
		t.Fatal(err)
	}
	kvs, seq, err := src.Snapshot("r", "", "")
	if err != nil || seq != 1 || len(kvs) != 1 {
		t.Fatalf("snapshot = %d kvs seq=%d err=%v", len(kvs), seq, err)
	}
	if err := dst.Import("r", kvs, seq); err != nil {
		t.Fatalf("import: %v", err)
	}
	applied, err := dst.AppliedSeq("r")
	if err != nil || applied != 1 {
		t.Fatalf("imported applied = %d err=%v, want 1", applied, err)
	}
	cells, err := dst.GetVersions("a-1", "doc", "content")
	if err != nil || len(cells) != 1 || cells[0].Version != 7 || string(cells[0].Value) != "x" {
		t.Fatalf("imported cell = %+v err=%v, want version 7 value x", cells, err)
	}
	if recs, complete, err := src.RecordsSince("r", 0); err != nil || !complete || len(recs) != 1 {
		t.Fatalf("records since 0 = %d complete=%v err=%v", len(recs), complete, err)
	}
	st, err := src.Status()
	if err != nil || st.ID != "src" || len(st.Regions) != 1 || st.Regions[0].Applied != 1 {
		t.Fatalf("status = %+v err=%v", st, err)
	}
}

// TestPortalClusterRoutes checks the portal's operator-facing cluster
// endpoints: the directory JSON, the ?row= primary lookup the failover
// drill uses, and rebalance.
func TestPortalClusterRoutes(t *testing.T) {
	var refs []poolcluster.NodeRef
	for i := 1; i <= 3; i++ {
		node, _, _ := newPoolNode(t, fmt.Sprintf("n%d", i))
		refs = append(refs, node)
	}
	c, err := poolcluster.New(refs, fastClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	srv := httptest.NewServer((&PortalServer{Cluster: c}).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	var st poolcluster.ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Nodes) != 3 || len(st.Regions) != 5 || st.Replicas != 2 {
		t.Fatalf("status = %d nodes %d regions replicas=%d", len(st.Nodes), len(st.Regions), st.Replicas)
	}

	resp, err = http.Get(srv.URL + "/v1/cluster/status?row=proc-0001")
	if err != nil {
		t.Fatal(err)
	}
	var who map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&who); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if who["region"] == "" || who["primary"] == "" {
		t.Fatalf("row lookup = %v, want region and primary", who)
	}

	resp, err = http.Post(srv.URL+"/v1/cluster/rebalance", ContentJSON, bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	var reb struct {
		Moves []poolcluster.Move `json:"moves"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || reb.Moves == nil {
		t.Fatalf("rebalance = %d moves=%v, want 200 with moves array", resp.StatusCode, reb.Moves)
	}
}

// TestReadyzDegradedTier exercises the three-state readiness contract:
// soft-check failures answer 200 {"status":"degraded"} so the instance
// stays in rotation, hard failures still answer 503, and hard outranks
// soft.
func TestReadyzDegradedTier(t *testing.T) {
	p := NewProbes()
	mux := http.NewServeMux()
	registerObservability(mux, false, p)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	p.SetReady(true)
	if code, body := probeStatus(t, srv.URL+"/v1/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("baseline readyz = %d %v", code, body)
	}

	lagging := true
	p.AddDegradedCheck("replication-lag", func() error {
		if lagging {
			return errors.New("replica n2 lags 12 records")
		}
		return nil
	})
	code, body := probeStatus(t, srv.URL+"/v1/readyz")
	if code != http.StatusOK || body["status"] != "degraded" || body["reason"] != "check replication-lag: replica n2 lags 12 records" {
		t.Fatalf("degraded readyz = %d %v, want 200 degraded with reason", code, body)
	}

	// A hard failure outranks the degraded verdict.
	hardDown := true
	p.AddCheck("cluster", func() error {
		if hardDown {
			return errors.New("region region-0001 has no live primary")
		}
		return nil
	})
	code, body = probeStatus(t, srv.URL+"/v1/readyz")
	if code != http.StatusServiceUnavailable || body["status"] != "unready" || body["reason"] != "check cluster: region region-0001 has no live primary" {
		t.Fatalf("hard-failure readyz = %d %v, want 503 unready", code, body)
	}

	hardDown = false
	if code, body = probeStatus(t, srv.URL+"/v1/readyz"); code != http.StatusOK || body["status"] != "degraded" {
		t.Fatalf("readyz after hard heal = %d %v, want degraded again", code, body)
	}
	lagging = false
	if code, body = probeStatus(t, srv.URL+"/v1/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("fully healed readyz = %d %v", code, body)
	}
}
