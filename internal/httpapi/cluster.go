package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dra4wfms/internal/pool"
	"dra4wfms/internal/poolcluster"
	"dra4wfms/internal/relay"
	"dra4wfms/internal/trace"
)

// Cluster-internal HTTP plane: PoolNodeServer exposes one pool node's
// replication and read endpoints, and RemoteNode is the coordinator-side
// client implementing poolcluster.NodeRef over it. Together they let a
// poolcluster.Cluster span drapool processes on different machines while
// the in-process tests and benchmarks keep using poolcluster.Node
// directly.
//
// The /v1/cluster/* endpoints are unauthenticated by design, like
// /v1/metrics: they are the replication fabric between pool nodes and
// the coordinator, deployed on a private cluster network, and signing
// every replicated record with enterprise keys would conflate the
// inter-enterprise trust boundary (the portal/TFC APIs) with the
// intra-deployment one. Do not expose a drapool listener publicly.
//
// Wire conventions: every endpoint speaks JSON. Range boundaries travel
// as base64 []byte fields because DefaultBoundaries may produce
// non-UTF-8 byte strings that a JSON string would silently corrupt;
// row keys are workflow identifiers ("proc-…", "tpl#…", "rec|…") and are
// always valid UTF-8.

// maxClusterBody bounds request bodies on the node endpoints. Snapshot
// imports carry whole regions, so the cap is generous.
const maxClusterBody = 64 << 20

// PoolNodeServer serves one poolcluster.Node over HTTP — the drapool
// daemon's API surface.
//
//	POST /v1/cluster/apply       ← replicated WAL record
//	POST /v1/cluster/applied     → region's contiguous applied mark
//	POST /v1/cluster/records     → retained catch-up records
//	POST /v1/cluster/snapshot    → region snapshot (live cells + seq)
//	POST /v1/cluster/import      ← snapshot seed
//	GET  /v1/cluster/node-status → replication progress per region
//	POST /v1/cluster/get|getrow|versions|scan → reads from the local table
//
// plus the standard observability routes (/v1/metrics, /v1/healthz, …).
type PoolNodeServer struct {
	Node *poolcluster.Node
	// EnablePprof additionally serves /debug/pprof/* (see PortalServer).
	EnablePprof bool
	// Probes gates GET /v1/readyz (see PortalServer.Probes).
	Probes *Probes
}

// NewPoolNodeServer wraps node for serving.
func NewPoolNodeServer(node *poolcluster.Node) *PoolNodeServer {
	return &PoolNodeServer{Node: node}
}

// Handler returns the routed http.Handler, every route wrapped with the
// telemetry middleware so replicated applies join their originating
// write's trace.
func (s *PoolNodeServer) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, instrument(pattern, h))
	}
	route("POST /v1/cluster/apply", s.handleApply)
	route("POST /v1/cluster/applied", s.handleApplied)
	route("POST /v1/cluster/records", s.handleClusterRecords)
	route("POST /v1/cluster/snapshot", s.handleSnapshot)
	route("POST /v1/cluster/import", s.handleImport)
	route("GET /v1/cluster/node-status", s.handleNodeStatus)
	route("POST /v1/cluster/get", s.handleClusterGet)
	route("POST /v1/cluster/getrow", s.handleClusterGetRow)
	route("POST /v1/cluster/versions", s.handleClusterVersions)
	route("POST /v1/cluster/scan", s.handleClusterScan)
	registerObservability(mux, s.EnablePprof, s.Probes)
	return mux
}

// Wire shapes for the node endpoints. Region/row arguments ride in POST
// bodies rather than query strings so raw-byte range boundaries survive
// transit (base64 via []byte) and the route set stays uniform.
type (
	clusterRegionReq struct {
		Region string `json:"region"`
		After  uint64 `json:"after,omitempty"`
	}
	clusterAppliedResp struct {
		Applied uint64 `json:"applied"`
	}
	clusterRecordsResp struct {
		Records  []poolcluster.Record `json:"records"`
		Complete bool                 `json:"complete"`
	}
	clusterSnapshotReq struct {
		Region string `json:"region"`
		Start  []byte `json:"start"`
		End    []byte `json:"end"`
	}
	clusterSnapshotResp struct {
		KVs []pool.KeyValue `json:"kvs"`
		Seq uint64          `json:"seq"`
	}
	clusterImportReq struct {
		Region string          `json:"region"`
		KVs    []pool.KeyValue `json:"kvs"`
		Seq    uint64          `json:"seq"`
	}
	clusterCellReq struct {
		Row       string `json:"row"`
		Family    string `json:"family,omitempty"`
		Qualifier string `json:"qualifier,omitempty"`
	}
	clusterGetResp struct {
		Value []byte `json:"value"`
		Found bool   `json:"found"`
	}
	clusterKVsResp struct {
		KVs []pool.KeyValue `json:"kvs"`
	}
	clusterVersionsResp struct {
		Cells []pool.Cell `json:"cells"`
	}
	clusterScanReq struct {
		StartRow []byte `json:"start_row,omitempty"`
		EndRow   []byte `json:"end_row,omitempty"`
		Prefix   string `json:"prefix,omitempty"`
		Family   string `json:"family,omitempty"`
		Limit    int    `json:"limit,omitempty"`
	}
)

// decodeClusterBody reads and unmarshals a node-endpoint request body,
// writing the 4xx itself when the body is unusable.
func decodeClusterBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxClusterBody))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusRequestEntityTooLarge)
		return false
	}
	if err := json.Unmarshal(raw, v); err != nil {
		http.Error(w, "decoding body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// clusterError maps a node error onto the wire: a down node is 503 (the
// relay retries), anything else is an application-level rejection the
// client must treat as permanent.
func clusterError(w http.ResponseWriter, err error) {
	status := http.StatusUnprocessableEntity
	if errors.Is(err, poolcluster.ErrNodeDown) {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", ContentJSON)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *PoolNodeServer) handleApply(w http.ResponseWriter, r *http.Request) {
	var rec poolcluster.Record
	if !decodeClusterBody(w, r, &rec) {
		return
	}
	if err := s.Node.Apply(r.Context(), rec); err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, map[string]string{"status": "applied"})
}

func (s *PoolNodeServer) handleApplied(w http.ResponseWriter, r *http.Request) {
	var req clusterRegionReq
	if !decodeClusterBody(w, r, &req) {
		return
	}
	applied, err := s.Node.AppliedSeq(req.Region)
	if err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, clusterAppliedResp{Applied: applied})
}

func (s *PoolNodeServer) handleClusterRecords(w http.ResponseWriter, r *http.Request) {
	var req clusterRegionReq
	if !decodeClusterBody(w, r, &req) {
		return
	}
	recs, complete, err := s.Node.RecordsSince(req.Region, req.After)
	if err != nil {
		clusterError(w, err)
		return
	}
	if recs == nil {
		recs = []poolcluster.Record{}
	}
	writeJSON(w, clusterRecordsResp{Records: recs, Complete: complete})
}

func (s *PoolNodeServer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req clusterSnapshotReq
	if !decodeClusterBody(w, r, &req) {
		return
	}
	kvs, seq, err := s.Node.Snapshot(req.Region, string(req.Start), string(req.End))
	if err != nil {
		clusterError(w, err)
		return
	}
	if kvs == nil {
		kvs = []pool.KeyValue{}
	}
	writeJSON(w, clusterSnapshotResp{KVs: kvs, Seq: seq})
}

func (s *PoolNodeServer) handleImport(w http.ResponseWriter, r *http.Request) {
	var req clusterImportReq
	if !decodeClusterBody(w, r, &req) {
		return
	}
	if err := s.Node.Import(req.Region, req.KVs, req.Seq); err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, map[string]string{"status": "imported"})
}

func (s *PoolNodeServer) handleNodeStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Node.Status()
	if err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, st)
}

func (s *PoolNodeServer) handleClusterGet(w http.ResponseWriter, r *http.Request) {
	var req clusterCellReq
	if !decodeClusterBody(w, r, &req) {
		return
	}
	v, found, err := s.Node.Get(r.Context(), req.Row, req.Family, req.Qualifier)
	if err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, clusterGetResp{Value: v, Found: found})
}

func (s *PoolNodeServer) handleClusterGetRow(w http.ResponseWriter, r *http.Request) {
	var req clusterCellReq
	if !decodeClusterBody(w, r, &req) {
		return
	}
	kvs, err := s.Node.GetRow(req.Row)
	if err != nil {
		clusterError(w, err)
		return
	}
	if kvs == nil {
		kvs = []pool.KeyValue{}
	}
	writeJSON(w, clusterKVsResp{KVs: kvs})
}

func (s *PoolNodeServer) handleClusterVersions(w http.ResponseWriter, r *http.Request) {
	var req clusterCellReq
	if !decodeClusterBody(w, r, &req) {
		return
	}
	cells, err := s.Node.GetVersions(req.Row, req.Family, req.Qualifier)
	if err != nil {
		clusterError(w, err)
		return
	}
	if cells == nil {
		cells = []pool.Cell{}
	}
	writeJSON(w, clusterVersionsResp{Cells: cells})
}

func (s *PoolNodeServer) handleClusterScan(w http.ResponseWriter, r *http.Request) {
	var req clusterScanReq
	if !decodeClusterBody(w, r, &req) {
		return
	}
	kvs, err := s.Node.Scan(r.Context(), pool.ScanOptions{
		StartRow: string(req.StartRow),
		EndRow:   string(req.EndRow),
		Prefix:   req.Prefix,
		Family:   req.Family,
		Limit:    req.Limit,
	})
	if err != nil {
		clusterError(w, err)
		return
	}
	if kvs == nil {
		kvs = []pool.KeyValue{}
	}
	writeJSON(w, clusterKVsResp{KVs: kvs})
}

// RemoteNode is poolcluster.NodeRef over HTTP: the coordinator's handle
// to a drapool process. Error classification is the contract that makes
// failover work: any transport failure or 5xx — the node unreachable,
// crashed, or refusing — comes back wrapped in poolcluster.ErrNodeDown
// so the cluster suspects the node and the relay retries; a 4xx is an
// application-level rejection wrapped relay.Permanent so replication
// dead-letters it instead of retrying a write that can never succeed.
type RemoteNode struct {
	id   string
	base string
	// Client is the HTTP client used for node calls; NewRemoteNode
	// installs one with a 15s timeout, which doubles as the transport-
	// level failure detector (a hung node times out and is suspected).
	Client *http.Client
}

// NewRemoteNode builds a handle to the drapool node with the given
// cluster ID listening at baseURL (e.g. "http://10.0.0.7:9201").
func NewRemoteNode(id, baseURL string) *RemoteNode {
	return &RemoteNode{
		id:     id,
		base:   strings.TrimRight(baseURL, "/"),
		Client: &http.Client{Timeout: 15 * time.Second},
	}
}

// ID returns the node's cluster-unique identifier.
func (n *RemoteNode) ID() string { return n.id }

// call performs one node RPC: marshal in (when non-nil), forward the
// caller's traceparent, classify the outcome per the RemoteNode
// contract, and unmarshal 200 bodies into out (when non-nil).
func (n *RemoteNode) call(ctx context.Context, method, path string, in, out interface{}) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return relay.Permanent(fmt.Errorf("httpapi: encoding %s request: %w", path, err))
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, n.base+path, body)
	if err != nil {
		return relay.Permanent(err)
	}
	if in != nil {
		req.Header.Set("Content-Type", ContentJSON)
	}
	if tp := trace.TraceparentFromContext(ctx); tp != "" {
		req.Header.Set(TraceparentHeader, tp)
	}
	AttachDeadline(ctx, req.Header)
	client := n.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", poolcluster.ErrNodeDown, n.id, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("%w: %s: reading response: %v", poolcluster.ErrNodeDown, n.id, err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("%w: %s: undecodable %s response: %v", poolcluster.ErrNodeDown, n.id, path, err)
		}
		return nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return relay.Permanent(fmt.Errorf("httpapi: node %s rejected %s: %s", n.id, path, strings.TrimSpace(string(raw))))
	default:
		return fmt.Errorf("%w: %s: %s: %s", poolcluster.ErrNodeDown, n.id, resp.Status, strings.TrimSpace(string(raw)))
	}
}

// Apply delivers one replicated record.
func (n *RemoteNode) Apply(ctx context.Context, rec poolcluster.Record) error {
	return n.call(ctx, http.MethodPost, "/v1/cluster/apply", rec, nil)
}

// AppliedSeq reports the region's contiguous applied high-water mark.
func (n *RemoteNode) AppliedSeq(region string) (uint64, error) {
	var resp clusterAppliedResp
	err := n.call(nil, http.MethodPost, "/v1/cluster/applied", clusterRegionReq{Region: region}, &resp)
	return resp.Applied, err
}

// RecordsSince returns the retained records with seq > after.
func (n *RemoteNode) RecordsSince(region string, after uint64) ([]poolcluster.Record, bool, error) {
	var resp clusterRecordsResp
	err := n.call(nil, http.MethodPost, "/v1/cluster/records", clusterRegionReq{Region: region, After: after}, &resp)
	if err != nil {
		return nil, false, err
	}
	return resp.Records, resp.Complete, nil
}

// Snapshot returns the latest live cells in [start, end) plus the
// region's applied mark.
func (n *RemoteNode) Snapshot(region, start, end string) ([]pool.KeyValue, uint64, error) {
	var resp clusterSnapshotResp
	req := clusterSnapshotReq{Region: region, Start: []byte(start), End: []byte(end)}
	err := n.call(nil, http.MethodPost, "/v1/cluster/snapshot", req, &resp)
	if err != nil {
		return nil, 0, err
	}
	return resp.KVs, resp.Seq, nil
}

// Import seeds a region from a snapshot.
func (n *RemoteNode) Import(region string, kvs []pool.KeyValue, seq uint64) error {
	req := clusterImportReq{Region: region, KVs: kvs, Seq: seq}
	return n.call(nil, http.MethodPost, "/v1/cluster/import", req, nil)
}

// Status reports the node's replication progress.
func (n *RemoteNode) Status() (poolcluster.NodeStatus, error) {
	var st poolcluster.NodeStatus
	err := n.call(nil, http.MethodGet, "/v1/cluster/node-status", nil, &st)
	return st, err
}

// Get reads the newest value of one cell from the node's table.
func (n *RemoteNode) Get(ctx context.Context, row, family, qualifier string) ([]byte, bool, error) {
	var resp clusterGetResp
	req := clusterCellReq{Row: row, Family: family, Qualifier: qualifier}
	if err := n.call(ctx, http.MethodPost, "/v1/cluster/get", req, &resp); err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Found, nil
}

// GetRow reads every live cell of a row.
func (n *RemoteNode) GetRow(row string) ([]pool.KeyValue, error) {
	var resp clusterKVsResp
	if err := n.call(nil, http.MethodPost, "/v1/cluster/getrow", clusterCellReq{Row: row}, &resp); err != nil {
		return nil, err
	}
	return resp.KVs, nil
}

// GetVersions reads the retained versions of a cell, newest first.
func (n *RemoteNode) GetVersions(row, family, qualifier string) ([]pool.Cell, error) {
	var resp clusterVersionsResp
	req := clusterCellReq{Row: row, Family: family, Qualifier: qualifier}
	if err := n.call(nil, http.MethodPost, "/v1/cluster/versions", req, &resp); err != nil {
		return nil, err
	}
	return resp.Cells, nil
}

// Scan runs a bounded range scan on the node's table. Filter cannot
// cross the wire and must be nil (poolcluster.Session applies filters
// client-side before delegating here).
func (n *RemoteNode) Scan(ctx context.Context, opts pool.ScanOptions) ([]pool.KeyValue, error) {
	if opts.Filter != nil {
		return nil, relay.Permanent(errors.New("httpapi: scan filter cannot cross the wire"))
	}
	var resp clusterKVsResp
	req := clusterScanReq{
		StartRow: []byte(opts.StartRow),
		EndRow:   []byte(opts.EndRow),
		Prefix:   opts.Prefix,
		Family:   opts.Family,
		Limit:    opts.Limit,
	}
	if err := n.call(ctx, http.MethodPost, "/v1/cluster/scan", req, &resp); err != nil {
		return nil, err
	}
	return resp.KVs, nil
}

var _ poolcluster.NodeRef = (*RemoteNode)(nil)

// ParseClusterNodes parses the -cluster-nodes flag format
// "id=url,id=url,…" into coordinator handles. Listing order matters: the
// cluster assigns region leadership round-robin in this order, so every
// coordinator in a deployment must list the nodes identically.
func ParseClusterNodes(spec string) ([]poolcluster.NodeRef, error) {
	var refs []poolcluster.NodeRef
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("httpapi: bad cluster node %q, want id=url", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("httpapi: duplicate cluster node ID %q", id)
		}
		seen[id] = true
		refs = append(refs, NewRemoteNode(id, url))
	}
	if len(refs) == 0 {
		return nil, errors.New("httpapi: no cluster nodes given")
	}
	return refs, nil
}
