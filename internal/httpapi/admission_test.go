package httpapi

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// blockingHandler parks requests until released, so tests can hold slots
// occupied while probing the gate.
type blockingHandler struct {
	mu      sync.Mutex
	open    bool
	cond    *sync.Cond
	entered chan struct{}
}

func newBlockingHandler(capacity int) *blockingHandler {
	b := &blockingHandler{entered: make(chan struct{}, capacity)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *blockingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b.entered <- struct{}{}
	b.mu.Lock()
	for !b.open {
		b.cond.Wait()
	}
	b.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

func (b *blockingHandler) release() {
	b.mu.Lock()
	b.open = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// fire launches a request through h and reports its status code on a channel.
func fire(h http.HandlerFunc, method string) chan int {
	done := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest(method, "/v1/test", nil))
		done <- rec.Code
	}()
	return done
}

func TestAdmissionShedsAtSaturation(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2, WriteShare: 1, RetryAfter: 7 * time.Second})
	blocker := newBlockingHandler(2)
	defer blocker.release()
	h := a.Middleware(ClassRead, blocker.ServeHTTP)

	r1 := fire(h, http.MethodGet)
	r2 := fire(h, http.MethodGet)
	<-blocker.entered
	<-blocker.entered

	// Both slots held: the third read is shed with the overload contract.
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/v1/test", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated gate answered %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", got)
	}
	if a.Shed() != 1 {
		t.Fatalf("Shed = %d, want 1", a.Shed())
	}

	// Probes bypass the gate even at saturation.
	probe := a.Middleware(ClassProbe, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	rec = httptest.NewRecorder()
	probe(rec, httptest.NewRequest(http.MethodGet, "/v1/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("probe shed with %d at saturation", rec.Code)
	}

	blocker.release()
	if c := <-r1; c != http.StatusOK {
		t.Fatalf("first admitted request answered %d", c)
	}
	if c := <-r2; c != http.StatusOK {
		t.Fatalf("second admitted request answered %d", c)
	}

	// Slots freed: admitted again.
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/v1/test", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("gate did not recover after release: %d", rec.Code)
	}
	if a.InFlight() != 0 {
		t.Fatalf("InFlight = %d after all requests settled", a.InFlight())
	}
}

func TestAdmissionWritesShedBeforeReads(t *testing.T) {
	// 4 slots, writes capped at half of them.
	a := NewAdmission(AdmissionConfig{MaxInFlight: 4, WriteShare: 0.5})
	blocker := newBlockingHandler(4)
	defer blocker.release()
	writes := a.Middleware(ClassWrite, blocker.ServeHTTP)
	reads := a.Middleware(ClassRead, blocker.ServeHTTP)

	w1 := fire(writes, http.MethodPost)
	w2 := fire(writes, http.MethodPost)
	<-blocker.entered
	<-blocker.entered

	// Write share exhausted: the next write sheds while a read still fits.
	rec := httptest.NewRecorder()
	writes(rec, httptest.NewRequest(http.MethodPost, "/v1/test", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("third write answered %d, want 429", rec.Code)
	}
	r1 := fire(reads, http.MethodGet)
	<-blocker.entered

	blocker.release()
	for _, done := range []chan int{w1, w2, r1} {
		if c := <-done; c != http.StatusOK {
			t.Fatalf("admitted request answered %d", c)
		}
	}
}

func TestAdmissionPressureSignalsShedWrites(t *testing.T) {
	depth := 0
	a := NewAdmission(AdmissionConfig{
		MaxInFlight:    16,
		VerifyDepth:    func() int { return depth },
		MaxVerifyDepth: 8,
	})
	ok := func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) }
	writes := a.Middleware(ClassWrite, ok)
	reads := a.Middleware(ClassRead, ok)

	// Below the threshold: writes flow.
	rec := httptest.NewRecorder()
	writes(rec, httptest.NewRequest(http.MethodPost, "/v1/test", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("unpressured write answered %d", rec.Code)
	}

	// Verify pool saturated: writes shed, reads keep flowing.
	depth = 9
	rec = httptest.NewRecorder()
	writes(rec, httptest.NewRequest(http.MethodPost, "/v1/test", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("pressured write answered %d, want 429", rec.Code)
	}
	rec = httptest.NewRecorder()
	reads(rec, httptest.NewRequest(http.MethodGet, "/v1/test", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("read shed by a write-pressure signal: %d", rec.Code)
	}

	// Pressure released: writes recover, and no slots leaked on the way.
	depth = 0
	rec = httptest.NewRecorder()
	writes(rec, httptest.NewRequest(http.MethodPost, "/v1/test", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("write after pressure released answered %d", rec.Code)
	}
	if a.InFlight() != 0 {
		t.Fatalf("InFlight = %d, want 0 (leaked slot on shed path)", a.InFlight())
	}
}

func TestAdmissionNilAdmitsEverything(t *testing.T) {
	var a *Admission
	h := a.Middleware(ClassWrite, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodPost, "/v1/test", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("nil gate answered %d", rec.Code)
	}
	if a.Shed() != 0 || a.InFlight() != 0 {
		t.Fatal("nil gate counted something")
	}
}

func TestClassOf(t *testing.T) {
	if ClassOf("GET /v1/worklist") != ClassRead {
		t.Fatal("GET should class as read")
	}
	for _, p := range []string{"POST /v1/documents", "PUT /v1/templates", "DELETE /x"} {
		if ClassOf(p) != ClassWrite {
			t.Fatalf("%s should class as write", p)
		}
	}
}
