package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"dra4wfms/internal/telemetry"
	"dra4wfms/internal/trace"
)

// Runtime telemetry: every route registered through instrument records a
// per-route request counter (split by status class), a latency histogram,
// and accepted request-body bytes; authWrap counts oversized rejections.
var (
	tel       = telemetry.Default()
	mRejected = tel.Counter("http_requests_rejected_total")
	// mDeduplicated counts mutating requests answered from the
	// idempotency cache instead of being re-applied (relay redeliveries).
	mDeduplicated = tel.Counter("http_requests_deduplicated_total")
)

// MetricsContentType is the Prometheus text exposition content type
// served by GET /v1/metrics.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// TraceparentHeader carries trace context across HTTP hops in the W3C
// trace-context format (version 00): 00-<traceid>-<spanid>-<flags>.
// It is deliberately excluded from request signatures (auth.go signs
// method, path, date, nonce, and body only), so intermediaries and
// retries may rewrite the span ID without invalidating the request.
const TraceparentHeader = "traceparent"

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-route telemetry. route is the mux
// pattern (e.g. "POST /v1/documents"), which keeps the label cardinality
// fixed regardless of path parameters.
func instrument(route string, next http.HandlerFunc) http.HandlerFunc {
	// Eager creation makes the route visible in /v1/metrics before any
	// traffic hits it.
	tel.Histogram("http_request_seconds", telemetry.LatencyBuckets, "route", route)
	bodyBytes := tel.Counter("http_request_body_bytes_total", "route", route)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		ctx := r.Context()
		// A propagated deadline bounds everything downstream of this
		// route — auth, verification, pool writes. An already-expired
		// request is answered 504 without spending a single RSA verify
		// on it; a live one becomes the request context's deadline so
		// long-running stages (verify pool, cluster writes) abandon the
		// work the moment the caller stops waiting for it.
		h := next
		if dl, ok := ParseDeadline(r.Header); ok {
			if !dl.After(time.Now()) {
				mDeadlineExpired.Inc()
				h = func(w http.ResponseWriter, r *http.Request) {
					http.Error(w, "propagated deadline expired before processing", http.StatusGatewayTimeout)
				}
			} else {
				var cancel context.CancelFunc
				ctx, cancel = context.WithDeadline(ctx, dl)
				defer cancel()
			}
		}
		// A valid inbound traceparent makes this request a mid-trace hop:
		// continue that trace, honoring its sampled flag. Otherwise this
		// server is the trace root and samples exactly once, here.
		var tspan *trace.Span
		if sc, ok := trace.ParseTraceparent(r.Header.Get(TraceparentHeader)); ok {
			ctx = trace.ContextWith(ctx, sc)
			ctx, tspan = trace.Default().StartSpan(ctx, "http_request_seconds")
		} else {
			ctx, tspan = trace.Default().StartRoot(ctx, "http", "http_request_seconds")
		}
		tspan.SetAttr("route", route)
		span := tel.StartSpan("http_request_seconds", "route", route)
		h(sw, r.WithContext(ctx))
		span.End()
		if sw.status >= 400 {
			tspan.SetStatus(fmt.Sprintf("http %d", sw.status))
		}
		tspan.End()
		tel.Counter("http_requests_total", "route", route, "code", fmt.Sprintf("%dxx", sw.status/100)).Inc()
		if r.ContentLength > 0 {
			bodyBytes.Add(r.ContentLength)
		}
	}
}

// handleMetrics serves the process-wide registry in Prometheus text
// exposition format. The endpoint is deliberately unauthenticated:
// scrapers cannot sign requests, and the registry holds only aggregate
// operational data — never document contents.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", MetricsContentType)
	_ = telemetry.Default().WritePrometheus(w)
}

// TracesResponse is the JSON envelope of GET /v1/traces.
type TracesResponse struct {
	// TraceID echoes the resolved trace filter (set when ?trace= was
	// given or ?process= resolved through an instance binding).
	TraceID string `json:"trace_id,omitempty"`
	// Bindings maps workflow instance IDs to trace IDs; present only on
	// unfiltered listings.
	Bindings map[string]string `json:"bindings,omitempty"`
	// Spans are the finished spans, oldest first.
	Spans []trace.FinishedSpan `json:"spans"`
}

// handleTraces serves the process-local span ring. Query parameters:
// ?trace=<32 hex> filters to one trace; ?process=<instance id> resolves
// through the portal's instance→trace binding first. Unauthenticated for
// the same reason as /v1/metrics: spans hold timing and identifiers,
// never document contents.
func handleTraces(w http.ResponseWriter, r *http.Request) {
	col := trace.Default()
	var resp TracesResponse
	q := r.URL.Query()
	switch {
	case q.Get("trace") != "":
		resp.TraceID = q.Get("trace")
	case q.Get("process") != "":
		tid, ok := col.InstanceTrace(q.Get("process"))
		if !ok {
			http.Error(w, "no trace bound to process "+q.Get("process"), http.StatusNotFound)
			return
		}
		resp.TraceID = tid
	default:
		resp.Bindings = col.Bindings()
	}
	resp.Spans = col.Spans(resp.TraceID)
	w.Header().Set("Content-Type", ContentJSON)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// registerObservability wires GET /v1/metrics, GET /v1/traces, the
// lifecycle probes (GET /v1/healthz, GET /v1/readyz) and, when pprof is
// enabled, the /debug/pprof/* handlers onto mux.
func registerObservability(mux *http.ServeMux, enablePprof bool, probes *Probes) {
	mux.HandleFunc("GET /v1/metrics", handleMetrics)
	mux.HandleFunc("GET /v1/traces", handleTraces)
	mux.HandleFunc("GET /v1/healthz", handleHealthz)
	mux.HandleFunc("GET /v1/readyz", readyzHandler(probes))
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}
