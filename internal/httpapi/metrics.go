package httpapi

import (
	"fmt"
	"net/http"
	"net/http/pprof"

	"dra4wfms/internal/telemetry"
)

// Runtime telemetry: every route registered through instrument records a
// per-route request counter (split by status class), a latency histogram,
// and accepted request-body bytes; authWrap counts oversized rejections.
var (
	tel       = telemetry.Default()
	mRejected = tel.Counter("http_requests_rejected_total")
	// mDeduplicated counts mutating requests answered from the
	// idempotency cache instead of being re-applied (relay redeliveries).
	mDeduplicated = tel.Counter("http_requests_deduplicated_total")
)

// MetricsContentType is the Prometheus text exposition content type
// served by GET /v1/metrics.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-route telemetry. route is the mux
// pattern (e.g. "POST /v1/documents"), which keeps the label cardinality
// fixed regardless of path parameters.
func instrument(route string, next http.HandlerFunc) http.HandlerFunc {
	// Eager creation makes the route visible in /v1/metrics before any
	// traffic hits it.
	tel.Histogram("http_request_seconds", telemetry.LatencyBuckets, "route", route)
	bodyBytes := tel.Counter("http_request_body_bytes_total", "route", route)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		span := tel.StartSpan("http_request_seconds", "route", route)
		next(sw, r)
		span.End()
		tel.Counter("http_requests_total", "route", route, "code", fmt.Sprintf("%dxx", sw.status/100)).Inc()
		if r.ContentLength > 0 {
			bodyBytes.Add(r.ContentLength)
		}
	}
}

// handleMetrics serves the process-wide registry in Prometheus text
// exposition format. The endpoint is deliberately unauthenticated:
// scrapers cannot sign requests, and the registry holds only aggregate
// operational data — never document contents.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", MetricsContentType)
	_ = telemetry.Default().WritePrometheus(w)
}

// registerObservability wires GET /v1/metrics, the lifecycle probes
// (GET /v1/healthz, GET /v1/readyz) and, when pprof is enabled, the
// /debug/pprof/* handlers onto mux.
func registerObservability(mux *http.ServeMux, enablePprof bool, probes *Probes) {
	mux.HandleFunc("GET /v1/metrics", handleMetrics)
	mux.HandleFunc("GET /v1/healthz", handleHealthz)
	mux.HandleFunc("GET /v1/readyz", readyzHandler(probes))
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}
