package httpapi

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Admission control sheds load *before* it reaches the expensive part of
// the stack. A DRA4WfMS request is cheap to refuse and costly to accept:
// accepting a document store means RSA-verifying its whole signature
// cascade and fanning replication through the relay, so by the time a
// server notices it is drowning, every queued request has already bought
// its spot in the verify pool. The admission layer keeps a hard cap on
// in-flight requests and answers the overflow with 429 + Retry-After —
// an honest signal the client (httpapi.Client) obeys — instead of
// letting queues grow until deadlines expire inside the RSA wall.
//
// Not all requests are equal under overload, so admission is classed:
//
//   - probes (readyz/metrics) are never shed — operators and load
//     balancers must see a drowning server, not a timeout;
//   - reads are shed only when the server is fully saturated;
//   - writes are shed first: they are bounded to WriteShare of the
//     in-flight cap, and additionally when a pressure signal (verify
//     pool depth, relay backlog) reports the tier behind this one is
//     already behind. Shedding a write early costs the client one
//     Retry-After wait; accepting it costs signature verification,
//     WAL appends, and replication the cluster cannot afford.

// Request classes, in descending admission priority.
const (
	ClassProbe = "probe"
	ClassRead  = "read"
	ClassWrite = "write"
)

var (
	mInflight   = tel.Gauge("http_inflight_requests")
	mShedReads  = tel.Counter("http_requests_shed_reads_total")
	mShedWrites = tel.Counter("http_requests_shed_writes_total")
)

// AdmissionConfig tunes an Admission gate. The zero value is usable:
// 256 in-flight requests, writes capped at 75% of them, 1s Retry-After,
// no pressure signals.
type AdmissionConfig struct {
	// MaxInFlight bounds concurrently served requests (default 256).
	MaxInFlight int
	// WriteShare caps writes at this fraction of MaxInFlight so a write
	// flood cannot starve reads (default 0.75; >=1 disables the cap).
	WriteShare float64
	// RetryAfter is the backoff advertised on a shed response (default 1s).
	RetryAfter time.Duration
	// VerifyDepth, when set, reports the verify-pool backlog (use
	// dsig.PoolDepth); writes are shed while it exceeds MaxVerifyDepth.
	VerifyDepth    func() int
	MaxVerifyDepth int
	// RelayPending, when set, reports the outbound relay backlog; writes
	// are shed while it exceeds MaxRelayPending. Accepting a write the
	// relay cannot drain just moves the queue somewhere less visible.
	RelayPending    func() int
	MaxRelayPending int
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.WriteShare <= 0 {
		c.WriteShare = 0.75
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxVerifyDepth <= 0 {
		c.MaxVerifyDepth = 64
	}
	if c.MaxRelayPending <= 0 {
		c.MaxRelayPending = 1024
	}
	return c
}

// Admission is a classed in-flight gate shared by all routes of one
// server. Construct with NewAdmission; nil *Admission admits everything.
type Admission struct {
	cfg      AdmissionConfig
	inflight atomic.Int64
	writes   atomic.Int64
	shed     atomic.Int64
}

// NewAdmission builds an admission gate from cfg.
func NewAdmission(cfg AdmissionConfig) *Admission {
	return &Admission{cfg: cfg.withDefaults()}
}

// Shed reports how many requests this gate has refused.
func (a *Admission) Shed() int64 {
	if a == nil {
		return 0
	}
	return a.shed.Load()
}

// InFlight reports currently admitted requests.
func (a *Admission) InFlight() int64 {
	if a == nil {
		return 0
	}
	return a.inflight.Load()
}

// admit reserves a slot for class, or reports why it cannot. release
// must be called exactly once when the request finishes.
func (a *Admission) admit(class string) (release func(), reason string) {
	if a == nil || class == ClassProbe {
		// Probes bypass the gate entirely: a saturated server must still
		// answer its load balancer.
		return func() {}, ""
	}
	in := a.inflight.Add(1)
	if int(in) > a.cfg.MaxInFlight {
		a.inflight.Add(-1)
		return nil, "server saturated"
	}
	if class == ClassWrite {
		wr := a.writes.Add(1)
		undo := func() {
			a.writes.Add(-1)
			a.inflight.Add(-1)
		}
		if limit := float64(a.cfg.MaxInFlight) * a.cfg.WriteShare; a.cfg.WriteShare < 1 && float64(wr) > limit {
			undo()
			return nil, "write share exhausted"
		}
		if a.cfg.VerifyDepth != nil && a.cfg.VerifyDepth() > a.cfg.MaxVerifyDepth {
			undo()
			return nil, "verify pool saturated"
		}
		if a.cfg.RelayPending != nil && a.cfg.RelayPending() > a.cfg.MaxRelayPending {
			undo()
			return nil, "relay backlog"
		}
		mInflight.Set(float64(in))
		return func() {
			a.writes.Add(-1)
			mInflight.Set(float64(a.inflight.Add(-1)))
		}, ""
	}
	mInflight.Set(float64(in))
	return func() { mInflight.Set(float64(a.inflight.Add(-1))) }, ""
}

// Middleware gates h as class. Shed requests are answered 429 with a
// Retry-After header and a machine-readable JSON body — the overload
// contract httpapi.Client understands.
func (a *Admission) Middleware(class string, h http.HandlerFunc) http.HandlerFunc {
	if a == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		release, reason := a.admit(class)
		if release == nil {
			a.shed.Add(1)
			if class == ClassWrite {
				mShedWrites.Inc()
			} else {
				mShedReads.Inc()
			}
			secs := int(a.cfg.RetryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			w.Header().Set("Content-Type", ContentJSON)
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "overloaded: " + reason})
			return
		}
		defer release()
		h(w, r)
	}
}

// ClassOf classifies a routed pattern: GETs are reads, everything else
// mutates and is a write. Probe routes never pass through here — the
// observability mux is registered unwrapped.
func ClassOf(pattern string) string {
	if len(pattern) >= 4 && pattern[:4] == "GET " {
		return ClassRead
	}
	return ClassWrite
}
