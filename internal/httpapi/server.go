package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"dra4wfms/internal/document"
	"dra4wfms/internal/monitor"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/poolcluster"
	"dra4wfms/internal/portal"
	"dra4wfms/internal/relay"
	"dra4wfms/internal/tfc"
	"dra4wfms/internal/xmltree"
)

// Wire content types.
const (
	ContentXML  = "application/xml"
	ContentJSON = "application/json"
)

// maxBody bounds accepted request bodies (documents grow linearly with
// executed activities; 64 MiB is generous). A variable so tests can
// exercise the 413 path without 64 MiB payloads.
var maxBody int64 = 64 << 20

// PortalServer serves one portal over HTTP.
//
//	POST /v1/documents/initial      body: DRA4WfMS XML  → notifications JSON
//	POST /v1/documents              body: DRA4WfMS XML  → notifications JSON
//	GET  /v1/documents/{processID}                      → DRA4WfMS XML
//	GET  /v1/worklist                                   → work items JSON (caller's)
//	GET  /v1/processes?state=running|completed          → ids JSON
//	GET  /v1/status/{processID}                         → monitor status JSON
//	GET  /v1/statistics                                 → pool statistics JSON
type PortalServer struct {
	Portal  *portal.Portal
	Monitor *monitor.Monitor
	Auth    *Authenticator
	// Webhooks, when non-nil, enables PUT /v1/webhook registration and
	// should also be wired as the portal's OnNotify.
	Webhooks *WebhookDispatcher
	// EnablePprof additionally serves /debug/pprof/* (CPU/heap/goroutine
	// profiling) from the same listener. Off by default: profiles expose
	// process internals, so operators opt in (draportal -pprof).
	EnablePprof bool
	// Probes, when non-nil, gates GET /v1/readyz on recovery completion
	// and registered checks; nil leaves the endpoint always-ready.
	Probes *Probes
	// Cluster, when the portal runs over a clustered pool, additionally
	// serves GET /v1/cluster/status (the region directory, consumed by
	// `dractl cluster status`) and POST /v1/cluster/rebalance. Both are
	// unauthenticated observability-plane routes like /v1/metrics.
	Cluster *poolcluster.Cluster
	// Admission, when non-nil, gates every business route (admission.go):
	// reads shed at saturation, writes earlier. Observability and cluster
	// control-plane routes stay ungated — a drowning server must still be
	// inspectable and repairable.
	Admission *Admission

	// dedup caches the responses of applied idempotency keys so a
	// redelivered store is answered, not re-applied.
	dedup relay.Deduper
}

// NewPortalServer assembles the HTTP facade of a portal.
func NewPortalServer(p *portal.Portal, m *monitor.Monitor, auth *Authenticator) *PortalServer {
	return &PortalServer{Portal: p, Monitor: m, Auth: auth}
}

// EnableWebhooks attaches a dispatcher signing as keys.Owner and wires it
// into the portal's notification hook. The dispatcher's outbox lives in
// memory; use EnableWebhooksAt for one that survives restarts.
func (s *PortalServer) EnableWebhooks(keys *pki.KeyPair) *WebhookDispatcher {
	return s.EnableWebhooksAt(keys, "")
}

// EnableWebhooksAt is EnableWebhooks with a persistent outbox WAL at
// walPath (empty = memory-only): notifications not yet delivered when
// the portal stops are retried on the next start.
func (s *PortalServer) EnableWebhooksAt(keys *pki.KeyPair, walPath string) *WebhookDispatcher {
	s.Webhooks = NewWebhookDispatcher(keys)
	s.Webhooks.WALPath = walPath
	s.Portal.OnNotify = s.Webhooks.Notify
	s.Portal.OnNotifyCtx = s.Webhooks.NotifyCtx
	return s.Webhooks
}

// Handler returns the routed http.Handler. Every route is wrapped with
// the telemetry middleware; GET /v1/metrics serves the registry and
// /debug/pprof/* is added when EnablePprof is set.
func (s *PortalServer) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h handlerFunc) {
		// Admission sits inside instrument (sheds are observable as 429s)
		// but ahead of auth, so a shed request never buys RSA work.
		mux.HandleFunc(pattern, instrument(pattern, s.Admission.Middleware(ClassOf(pattern), s.auth(h))))
	}
	route("POST /v1/documents/initial", idempotent(&s.dedup, s.handleStoreInitial))
	route("POST /v1/documents", idempotent(&s.dedup, s.handleStore))
	route("GET /v1/documents/{pid}", s.handleRetrieve)
	route("GET /v1/worklist", s.handleWorklist)
	route("GET /v1/processes", s.handleProcesses)
	route("GET /v1/status/{pid}", s.handleStatus)
	route("GET /v1/statistics", s.handleStatistics)
	route("PUT /v1/templates", s.handleStoreTemplate)
	route("GET /v1/templates", s.handleListTemplates)
	route("GET /v1/templates/{name}", s.handleGetTemplate)
	route("PUT /v1/webhook", s.handleWebhook)
	if s.Cluster != nil {
		mux.HandleFunc("GET /v1/cluster/status", instrument("GET /v1/cluster/status", s.handleClusterStatus))
		mux.HandleFunc("POST /v1/cluster/rebalance", instrument("POST /v1/cluster/rebalance", s.handleClusterRebalance))
	}
	registerObservability(mux, s.EnablePprof, s.Probes)
	return mux
}

// handleClusterStatus serves the live region directory. With ?row=KEY it
// instead reports which region owns the row and which node leads it —
// the hook the failover drill uses to pick its kill target.
func (s *PortalServer) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if row := r.URL.Query().Get("row"); row != "" {
		region, node := s.Cluster.PrimaryFor(row)
		writeJSON(w, map[string]string{"row": row, "region": region, "primary": node})
		return
	}
	writeJSON(w, s.Cluster.Status())
}

// handleClusterRebalance spreads region leadership evenly across live
// nodes and reports the migrations performed.
func (s *PortalServer) handleClusterRebalance(w http.ResponseWriter, r *http.Request) {
	moves, err := s.Cluster.Rebalance()
	if moves == nil {
		moves = []poolcluster.Move{}
	}
	if err != nil {
		w.Header().Set("Content-Type", ContentJSON)
		w.WriteHeader(http.StatusInternalServerError)
		_ = json.NewEncoder(w).Encode(map[string]interface{}{"error": err.Error(), "moves": moves})
		return
	}
	writeJSON(w, map[string]interface{}{"moves": moves})
}

// handlerFunc is an authenticated handler: principal is the verified
// caller, body the fully read request body.
type handlerFunc func(w http.ResponseWriter, r *http.Request, principal string, body []byte)

func (s *PortalServer) auth(h handlerFunc) http.HandlerFunc {
	return authWrap(s.Auth, h)
}

func authWrap(a *Authenticator, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
		if err != nil {
			http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if int64(len(body)) > maxBody {
			// Deliberate 413 with a machine-readable JSON error (not an
			// accidental connection reset), counted for operators.
			mRejected.Inc()
			w.Header().Set("Content-Type", ContentJSON)
			w.WriteHeader(http.StatusRequestEntityTooLarge)
			_ = json.NewEncoder(w).Encode(map[string]string{
				"error": fmt.Sprintf("request body exceeds the %d-byte limit", maxBody),
			})
			return
		}
		principal, err := a.Verify(r, body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnauthorized)
			return
		}
		h(w, r, principal, body)
	}
}

// cachedResponse is one remembered idempotent outcome.
type cachedResponse struct {
	status      int
	contentType string
	body        []byte
}

// responseCapture tees a handler's response into a buffer so a 2xx
// outcome can be cached for replay.
type responseCapture struct {
	http.ResponseWriter
	status int
	buf    []byte
}

func (rc *responseCapture) WriteHeader(code int) {
	rc.status = code
	rc.ResponseWriter.WriteHeader(code)
}

func (rc *responseCapture) Write(b []byte) (int, error) {
	rc.buf = append(rc.buf, b...)
	return rc.ResponseWriter.Write(b)
}

// idempotent makes a mutating handler safe under redelivery: a request
// carrying HeaderIdempotencyKey whose (principal, key) pair was already
// applied gets the original 2xx response replayed — marked with
// HeaderIdempotentReplay — instead of a second application. Only 2xx
// outcomes are cached; errors stay retryable. The key is scoped to the
// authenticated principal, so one caller cannot replay another's result.
func idempotent(d *relay.Deduper, h handlerFunc) handlerFunc {
	return func(w http.ResponseWriter, r *http.Request, principal string, body []byte) {
		key := r.Header.Get(HeaderIdempotencyKey)
		if key == "" {
			h(w, r, principal, body)
			return
		}
		scoped := principal + "|" + key
		if v, ok := d.Lookup(scoped); ok {
			cr := v.(cachedResponse)
			mDeduplicated.Inc()
			w.Header().Set(HeaderIdempotentReplay, "true")
			if cr.contentType != "" {
				w.Header().Set("Content-Type", cr.contentType)
			}
			w.WriteHeader(cr.status)
			_, _ = w.Write(cr.body)
			return
		}
		rc := &responseCapture{ResponseWriter: w, status: http.StatusOK}
		h(rc, r, principal, body)
		if rc.status/100 == 2 {
			d.Remember(scoped, cachedResponse{
				status:      rc.status,
				contentType: rc.Header().Get("Content-Type"),
				body:        rc.buf,
			})
		}
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", ContentJSON)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *PortalServer) handleStoreInitial(w http.ResponseWriter, r *http.Request, principal string, body []byte) {
	doc, err := document.Parse(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	notes, err := s.Portal.StoreInitialCtx(r.Context(), doc)
	if err != nil {
		http.Error(w, err.Error(), verifyFailureStatus(err))
		return
	}
	writeJSON(w, notes)
}

func (s *PortalServer) handleStore(w http.ResponseWriter, r *http.Request, principal string, body []byte) {
	doc, err := document.Parse(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	notes, err := s.Portal.StoreCtx(r.Context(), doc)
	if err != nil {
		http.Error(w, err.Error(), verifyFailureStatus(err))
		return
	}
	writeJSON(w, notes)
}

func (s *PortalServer) handleRetrieve(w http.ResponseWriter, r *http.Request, principal string, _ []byte) {
	doc, err := s.Portal.RetrieveCtx(r.Context(), principal, r.PathValue("pid"))
	if err != nil {
		httpStatusError(w, err)
		return
	}
	w.Header().Set("Content-Type", ContentXML)
	_, _ = w.Write(doc.Bytes())
}

func (s *PortalServer) handleWorklist(w http.ResponseWriter, r *http.Request, principal string, _ []byte) {
	items, err := s.Portal.WorklistCtx(r.Context(), principal)
	if err != nil {
		httpStatusError(w, err)
		return
	}
	writeJSON(w, items)
}

func (s *PortalServer) handleProcesses(w http.ResponseWriter, r *http.Request, principal string, _ []byte) {
	state := r.URL.Query().Get("state")
	if state != "" && state != "running" && state != "completed" {
		http.Error(w, "state must be running or completed", http.StatusBadRequest)
		return
	}
	writeJSON(w, s.Portal.ProcessIDs(state))
}

func (s *PortalServer) handleStatus(w http.ResponseWriter, r *http.Request, principal string, _ []byte) {
	st, err := s.Monitor.InstanceStatus(r.PathValue("pid"))
	if err != nil {
		httpStatusError(w, err)
		return
	}
	writeJSON(w, st)
}

func (s *PortalServer) handleStatistics(w http.ResponseWriter, r *http.Request, principal string, _ []byte) {
	stats, err := s.Monitor.Statistics()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, stats)
}

func (s *PortalServer) handleStoreTemplate(w http.ResponseWriter, r *http.Request, principal string, body []byte) {
	tpl, err := xmltree.ParseBytes(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	name, err := s.Portal.StoreTemplate(tpl)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, map[string]string{"name": name})
}

func (s *PortalServer) handleListTemplates(w http.ResponseWriter, r *http.Request, principal string, _ []byte) {
	writeJSON(w, s.Portal.Templates())
}

func (s *PortalServer) handleGetTemplate(w http.ResponseWriter, r *http.Request, principal string, _ []byte) {
	_, tpl, err := s.Portal.Template(principal, r.PathValue("name"))
	if err != nil {
		status := http.StatusNotFound
		if strings.Contains(err.Error(), "unknown principal") {
			status = http.StatusUnauthorized
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", ContentXML)
	_, _ = w.Write(tpl.Canonical())
}

func httpStatusError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	msg := err.Error()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		// The propagated deadline expired mid-request; the work was
		// abandoned, not failed.
		status = http.StatusGatewayTimeout
	case errors.Is(err, pki.ErrUnknownPrincipal):
		status = http.StatusUnauthorized
	case errors.Is(err, pki.ErrMalformedKey):
		status = http.StatusUnprocessableEntity
	case strings.Contains(msg, "unknown process"):
		status = http.StatusNotFound
	case strings.Contains(msg, "unknown principal"):
		status = http.StatusUnauthorized
	}
	http.Error(w, msg, status)
}

// verifyFailureStatus maps a failed document store/process to an HTTP
// status. Tampered cascades and replays are conflicts (409), but
// key-resolution failures are the client's problem, not the server's: a
// signature by an unregistered or revoked principal is 401, and key
// material that cannot be parsed is 422. pki classifies the two
// (ErrUnknownPrincipal vs ErrMalformedKey) precisely so these surface as
// 4xx instead of a blanket 409 — and never as 500.
func verifyFailureStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		// The propagated deadline expired while the store/process was in
		// flight: the request was abandoned (504), not refused — the
		// caller should retry with a fresh budget, not treat the
		// document as rejected.
		return http.StatusGatewayTimeout
	case errors.Is(err, pki.ErrUnknownPrincipal):
		return http.StatusUnauthorized
	case errors.Is(err, pki.ErrMalformedKey):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusConflict
	}
}

// --- TFC server ------------------------------------------------------------------

// TFCServer serves one TFC server over HTTP.
//
//	POST /v1/process   body: intermediate DRA4WfMS XML → ProcessResponse
//	GET  /v1/records?process=ID                        → forwarding log JSON
type TFCServer struct {
	Server *tfc.Server
	Auth   *Authenticator
	// EnablePprof additionally serves /debug/pprof/* (see PortalServer).
	EnablePprof bool
	// Probes gates GET /v1/readyz (see PortalServer.Probes).
	Probes *Probes
	// Admission gates the business routes (see PortalServer.Admission).
	Admission *Admission

	// dedup replays responses of already-applied process submissions
	// (see PortalServer.dedup).
	dedup relay.Deduper
}

// NewTFCServer assembles the HTTP facade of a TFC server.
func NewTFCServer(srv *tfc.Server, auth *Authenticator) *TFCServer {
	return &TFCServer{Server: srv, Auth: auth}
}

// ProcessResponse is the JSON envelope returned by POST /v1/process; the
// processed document travels base64-free as a nested XML string.
type ProcessResponse struct {
	// Next lists the routed targets.
	Next []string `json:"next"`
	// Completed reports process completion.
	Completed bool `json:"completed"`
	// Timestamp is the notarized finish time.
	Timestamp time.Time `json:"timestamp"`
	// Document is the canonical XML of the final document.
	Document string `json:"document"`
}

// Handler returns the routed http.Handler, instrumented like the
// portal's and likewise serving GET /v1/metrics.
func (s *TFCServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/process", instrument("POST /v1/process", s.Admission.Middleware(ClassWrite, authWrap(s.Auth, idempotent(&s.dedup, s.handleProcess)))))
	mux.HandleFunc("GET /v1/records", instrument("GET /v1/records", s.Admission.Middleware(ClassRead, authWrap(s.Auth, s.handleRecords))))
	registerObservability(mux, s.EnablePprof, s.Probes)
	return mux
}

func (s *TFCServer) handleProcess(w http.ResponseWriter, r *http.Request, principal string, body []byte) {
	doc, err := document.Parse(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	out, err := s.Server.ProcessCtx(r.Context(), doc)
	if err != nil {
		http.Error(w, err.Error(), verifyFailureStatus(err))
		return
	}
	writeJSON(w, ProcessResponse{
		Next:      out.Next,
		Completed: out.Completed,
		Timestamp: out.Timestamp,
		Document:  string(out.Doc.Bytes()),
	})
}

func (s *TFCServer) handleRecords(w http.ResponseWriter, r *http.Request, principal string, _ []byte) {
	pid := r.URL.Query().Get("process")
	var recs []tfc.ForwardRecord
	if pid == "" {
		recs = s.Server.Records()
	} else {
		recs = s.Server.RecordsFor(pid)
	}
	writeJSON(w, recs)
}

// ListenAndServe runs handler on addr; it exists for the cmd binaries
// (tests use httptest). http.ErrServerClosed — the sentinel a graceful
// Shutdown makes ListenAndServe return — is a clean exit, not an error.
func ListenAndServe(addr string, handler http.Handler) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Serve runs handler on addr until ctx is canceled, then shuts down
// gracefully: onDrain (if non-nil) runs first — daemons flip their
// readiness probe there so load balancers stop routing — and in-flight
// requests get up to grace to complete before the listener is torn down.
// Serve returns nil on a clean drain; a non-nil error means either the
// listener failed or the grace deadline expired with requests still
// in flight.
func Serve(ctx context.Context, addr string, handler http.Handler, grace time.Duration, onDrain func()) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeListener(ctx, ln, handler, grace, onDrain)
}

// ServeListener is Serve on an existing listener (tests use ephemeral
// ports; Serve wraps it with net.Listen).
func ServeListener(ctx context.Context, ln net.Listener, handler http.Handler, grace time.Duration, onDrain func()) error {
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	if onDrain != nil {
		onDrain()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	// Collect the Serve goroutine's ErrServerClosed so nothing leaks.
	if serr := <-serveErr; !errors.Is(serr, http.ErrServerClosed) && serr != nil && err == nil {
		err = serr
	}
	return err
}
