package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dra4wfms/internal/document"
	"dra4wfms/internal/monitor"
	"dra4wfms/internal/pool"
	"dra4wfms/internal/portal"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/wfdef"
)

// receiver is a participant's notification endpoint: it verifies the
// portal's signature on each delivery and records the notifications.
type receiver struct {
	srv  *httptest.Server
	auth *Authenticator

	mu    sync.Mutex
	notes []portal.Notification
	bad   int
}

func newReceiver(t *testing.T, w *world) *receiver {
	t.Helper()
	r := &receiver{auth: NewAuthenticator(w.env.Registry, w.clock)}
	r.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		body, _ := io.ReadAll(req.Body)
		sender, err := r.auth.Verify(req, body)
		if err != nil || sender != "portal@cloud" {
			r.mu.Lock()
			r.bad++
			r.mu.Unlock()
			http.Error(rw, "bad signature", http.StatusUnauthorized)
			return
		}
		var n portal.Notification
		if err := json.Unmarshal(body, &n); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		r.mu.Lock()
		r.notes = append(r.notes, n)
		r.mu.Unlock()
		rw.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(r.srv.Close)
	return r
}

func (r *receiver) all() []portal.Notification {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]portal.Notification, len(r.notes))
	copy(out, r.notes)
	return out
}

// webhookWorld wires a fresh portal server with webhooks enabled.
func webhookWorld(t *testing.T) (*world, *PortalServer, *WebhookDispatcher) {
	t.Helper()
	w := newWorld(t)
	w.env.MustRegister("portal@cloud")
	cluster, err := pool.NewCluster([]string{"rs1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	table, err := portal.CreateTable(cluster)
	if err != nil {
		t.Fatal(err)
	}
	ps := &PortalServer{
		Portal:  portal.New("wh-portal", w.env.Registry, table, w.clock),
		Monitor: monitor.New(table),
		Auth:    NewAuthenticator(w.env.Registry, w.clock),
	}
	dispatcher := ps.EnableWebhooks(w.env.KeyOf("portal@cloud"))
	dispatcher.Clock = w.clock
	t.Cleanup(func() { _ = dispatcher.Close() })
	srv := httptest.NewServer(ps.Handler())
	t.Cleanup(srv.Close)
	w.portalSrv = srv
	return w, ps, dispatcher
}

func TestWebhookDelivery(t *testing.T) {
	w, _, dispatcher := webhookWorld(t)
	rcv := newReceiver(t, w)

	alice := wfdef.Fig9Participants["A"]
	bob := wfdef.Fig9Participants["B1"]
	aliceCli := w.clientFor(t, alice)
	if err := aliceCli.RegisterWebhook(rcv.srv.URL, ""); err != nil {
		t.Fatal(err)
	}

	doc, err := document.New(wfdef.Fig9A(), w.env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	designer := w.clientFor(t, "designer@acme")
	if _, err := designer.StoreInitial(doc); err != nil {
		t.Fatal(err)
	}
	dispatcher.Wait()

	notes := rcv.all()
	if len(notes) != 1 || notes[0].Participant != alice || notes[0].Activity != "A" {
		t.Fatalf("delivered notes = %v", notes)
	}
	if rcv.bad != 0 {
		t.Fatalf("receiver rejected %d deliveries", rcv.bad)
	}
	delivered, failed := dispatcher.Stats()
	if delivered != 1 || failed != 0 {
		t.Fatalf("stats = %d delivered, %d failed", delivered, failed)
	}

	// bob has no webhook: executing A notifies B1/B2 but only registered
	// principals receive deliveries.
	out, err := w.agents["A"].Execute(doc, "A", map[string]string{"request": "r"}, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aliceCli.Store(out.Doc); err != nil {
		t.Fatal(err)
	}
	dispatcher.Wait()
	if len(rcv.all()) != 1 {
		t.Fatalf("unexpected deliveries for unregistered participants: %v", rcv.all())
	}
	_ = bob

	// Unregister and confirm silence.
	if err := aliceCli.RegisterWebhook("", ""); err != nil {
		t.Fatal(err)
	}
	if _, ok := dispatcher.URL(alice); ok {
		t.Fatal("unregister did not take effect")
	}
}

func TestWebhookValidation(t *testing.T) {
	w, ps, dispatcher := webhookWorld(t)
	alice := wfdef.Fig9Participants["A"]
	cli := w.clientFor(t, alice)

	// Bad URL rejected.
	if err := cli.RegisterWebhook("not-a-url", ""); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("bad url: %v", err)
	}
	if err := cli.RegisterWebhook("ftp://host/x", ""); err == nil {
		t.Fatal("ftp url accepted")
	}
	// Role registration requires holding the role.
	if err := cli.RegisterWebhook("http://localhost:1/cb", "approver"); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("role without membership: %v", err)
	}
	// Delivery failure is counted, not fatal.
	if err := cli.RegisterWebhook("http://127.0.0.1:1/unreachable", ""); err != nil {
		t.Fatal(err)
	}
	doc, _ := document.New(wfdef.Fig9A(), w.env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if _, err := w.clientFor(t, "designer@acme").StoreInitial(doc); err != nil {
		t.Fatal(err)
	}
	dispatcher.Wait()
	if _, failed := dispatcher.Stats(); failed != 1 {
		t.Fatalf("failed deliveries = %d, want 1", failed)
	}
	_ = ps
}
