package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"dra4wfms/internal/document"
	"dra4wfms/internal/dsig"
	"dra4wfms/internal/monitor"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/portal"
	"dra4wfms/internal/tfc"
	"dra4wfms/internal/trace"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmltree"
)

// Client talks to portal and TFC HTTP services with signed requests. One
// client represents one principal (its AEA's network side).
//
// Every call runs under a context with a deadline: the exported methods
// use context.Background bounded by Timeout (default 30s), so a hung
// peer can no longer block a hop indefinitely; the *Ctx variants also
// honor the caller's cancellation.
type Client struct {
	// BaseURL is the service root, e.g. "http://portal-1.example:8080".
	BaseURL string
	// Keys signs the requests; Keys.Owner is the authenticated principal.
	Keys *pki.KeyPair
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
	// Clock supplies request dates (default time.Now).
	Clock func() time.Time
	// Timeout bounds one request end to end, including the body read
	// (default 30s; negative disables the bound).
	Timeout time.Duration
}

// DefaultTimeout bounds a client request when Client.Timeout is unset.
const DefaultTimeout = 30 * time.Second

// NewClient builds a client for the given principal.
func NewClient(baseURL string, keys *pki.KeyPair) *Client {
	return &Client{BaseURL: baseURL, Keys: keys, HTTP: http.DefaultClient, Clock: time.Now}
}

func (c *Client) do(method, path string, body []byte) (*http.Response, []byte, error) {
	return c.doCtx(context.Background(), method, path, body)
}

// maxShedRetries bounds how often one call re-attempts after a shed
// (429/503 with Retry-After); the budget below usually stops it first.
const maxShedRetries = 2

// retryHeadroom is the minimum remaining-deadline slack a retry must
// leave for the attempt itself: waiting out a Retry-After only to have
// the next attempt expire mid-flight helps nobody.
const retryHeadroom = 100 * time.Millisecond

func (c *Client) doCtx(ctx context.Context, method, path string, body []byte) (*http.Response, []byte, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	clock := c.Clock
	if clock == nil {
		clock = time.Now
	}
	for attempt := 0; ; attempt++ {
		resp, respBody, err := c.attemptOnce(ctx, method, path, body, clock)
		if resp == nil {
			return resp, respBody, err
		}
		// Honor an explicit shed: 429/503 with Retry-After is the
		// server asking us to come back, not a failure to escalate. The
		// retry is skipped when the context deadline cannot accommodate
		// the wait plus another attempt — an expired retry only adds to
		// the very overload the server is shedding.
		if attempt >= maxShedRetries {
			return resp, respBody, err
		}
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
			return resp, respBody, err
		}
		wait, ok := parseRetryAfter(resp.Header.Get("Retry-After"), clock())
		if !ok {
			return resp, respBody, err
		}
		if dl, hasDL := ctx.Deadline(); hasDL && clock().Add(wait+retryHeadroom).After(dl) {
			return resp, respBody, err
		}
		if wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				return resp, respBody, err
			case <-timer.C:
			}
		}
	}
}

// parseRetryAfter decodes a Retry-After value: delta-seconds or an HTTP
// date. A missing or malformed value reports ok=false — without the
// server's guidance the client does not invent a retry schedule.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		d := at.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// attemptOnce performs one signed request. Each attempt re-signs with a
// fresh date and nonce, so a retried request never replays a signature,
// and carries the context deadline downstream via DeadlineHeader.
func (c *Client) attemptOnce(ctx context.Context, method, path string, body []byte, clock func() time.Time) (*http.Response, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", ContentXML)
	}
	// Propagate the caller's trace context (if any) so the server joins
	// the same trace instead of rooting a new one.
	if tp := trace.TraceparentFromContext(ctx); tp != "" {
		req.Header.Set(TraceparentHeader, tp)
	}
	AttachDeadline(ctx, req.Header)
	if err := SignRequest(req, body, c.Keys, clock()); err != nil {
		return nil, nil, err
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode/100 != 2 {
		return resp, respBody, fmt.Errorf("httpapi: %s %s: %s: %s",
			method, path, resp.Status, bytes.TrimSpace(respBody))
	}
	return resp, respBody, nil
}

// StoreInitial posts a secured initial document to the portal.
func (c *Client) StoreInitial(doc *document.Document) ([]portal.Notification, error) {
	return c.StoreInitialCtx(context.Background(), doc)
}

// StoreInitialCtx is StoreInitial bounded by the caller's context.
func (c *Client) StoreInitialCtx(ctx context.Context, doc *document.Document) ([]portal.Notification, error) {
	_, body, err := c.doCtx(ctx, http.MethodPost, "/v1/documents/initial", doc.Bytes())
	if err != nil {
		return nil, err
	}
	var notes []portal.Notification
	if err := json.Unmarshal(body, &notes); err != nil {
		return nil, fmt.Errorf("httpapi: decoding notifications: %w", err)
	}
	return notes, nil
}

// Store posts a produced document to the portal.
func (c *Client) Store(doc *document.Document) ([]portal.Notification, error) {
	return c.StoreCtx(context.Background(), doc)
}

// StoreCtx is Store bounded by the caller's context.
func (c *Client) StoreCtx(ctx context.Context, doc *document.Document) ([]portal.Notification, error) {
	_, body, err := c.doCtx(ctx, http.MethodPost, "/v1/documents", doc.Bytes())
	if err != nil {
		return nil, err
	}
	var notes []portal.Notification
	if err := json.Unmarshal(body, &notes); err != nil {
		return nil, fmt.Errorf("httpapi: decoding notifications: %w", err)
	}
	return notes, nil
}

// Retrieve fetches the stored document of a process instance.
func (c *Client) Retrieve(processID string) (*document.Document, error) {
	return c.RetrieveCtx(context.Background(), processID)
}

// RetrieveCtx is Retrieve bounded by the caller's context.
func (c *Client) RetrieveCtx(ctx context.Context, processID string) (*document.Document, error) {
	_, body, err := c.doCtx(ctx, http.MethodGet, "/v1/documents/"+url.PathEscape(processID), nil)
	if err != nil {
		return nil, err
	}
	return document.Parse(body)
}

// Worklist fetches the caller's TO-DO list.
func (c *Client) Worklist() ([]portal.WorkItem, error) {
	_, body, err := c.do(http.MethodGet, "/v1/worklist", nil)
	if err != nil {
		return nil, err
	}
	var items []portal.WorkItem
	if err := json.Unmarshal(body, &items); err != nil {
		return nil, fmt.Errorf("httpapi: decoding worklist: %w", err)
	}
	return items, nil
}

// Processes lists process ids, optionally filtered by state.
func (c *Client) Processes(state string) ([]string, error) {
	path := "/v1/processes"
	if state != "" {
		path += "?state=" + url.QueryEscape(state)
	}
	_, body, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	var ids []string
	if err := json.Unmarshal(body, &ids); err != nil {
		return nil, fmt.Errorf("httpapi: decoding ids: %w", err)
	}
	return ids, nil
}

// Status fetches the monitoring status of one instance.
func (c *Client) Status(processID string) (*monitor.Status, error) {
	_, body, err := c.do(http.MethodGet, "/v1/status/"+url.PathEscape(processID), nil)
	if err != nil {
		return nil, err
	}
	var st monitor.Status
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("httpapi: decoding status: %w", err)
	}
	return &st, nil
}

// Statistics fetches the pool-wide statistics.
func (c *Client) Statistics() (*monitor.Statistics, error) {
	_, body, err := c.do(http.MethodGet, "/v1/statistics", nil)
	if err != nil {
		return nil, err
	}
	var stats monitor.Statistics
	if err := json.Unmarshal(body, &stats); err != nil {
		return nil, fmt.Errorf("httpapi: decoding statistics: %w", err)
	}
	return &stats, nil
}

// StoreTemplate uploads a designer-signed workflow template to the
// portal's catalog and returns the cataloged name.
func (c *Client) StoreTemplate(tpl *xmltree.Node) (string, error) {
	_, body, err := c.do(http.MethodPut, "/v1/templates", tpl.Canonical())
	if err != nil {
		return "", err
	}
	var res map[string]string
	if err := json.Unmarshal(body, &res); err != nil {
		return "", fmt.Errorf("httpapi: decoding template response: %w", err)
	}
	return res["name"], nil
}

// Templates lists the portal's template catalog (name → designer).
func (c *Client) Templates() (map[string]string, error) {
	_, body, err := c.do(http.MethodGet, "/v1/templates", nil)
	if err != nil {
		return nil, err
	}
	var res map[string]string
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("httpapi: decoding templates: %w", err)
	}
	return res, nil
}

// Template fetches and locally re-verifies a cataloged template; the
// caller supplies the resolver (typically the deployment registry).
func (c *Client) Template(name string, resolver dsig.KeyResolver) (*wfdef.Definition, error) {
	_, body, err := c.do(http.MethodGet, "/v1/templates/"+url.PathEscape(name), nil)
	if err != nil {
		return nil, err
	}
	tpl, err := xmltree.ParseBytes(body)
	if err != nil {
		return nil, err
	}
	return document.VerifyTemplate(tpl, resolver)
}

// ProcessViaTFC submits an intermediate document to a TFC service and
// returns the routed outcome (pointing the client's BaseURL at the TFC).
func (c *Client) ProcessViaTFC(doc *document.Document) (*ProcessResponse, *document.Document, error) {
	return c.ProcessViaTFCCtx(context.Background(), doc)
}

// ProcessViaTFCCtx is ProcessViaTFC bounded by the caller's context —
// the AEA→TFC forwarding hop. For delivery that survives crashes and
// peer outages, route the hop through a Forwarder instead.
func (c *Client) ProcessViaTFCCtx(ctx context.Context, doc *document.Document) (*ProcessResponse, *document.Document, error) {
	_, body, err := c.doCtx(ctx, http.MethodPost, "/v1/process", doc.Bytes())
	if err != nil {
		return nil, nil, err
	}
	var pr ProcessResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		return nil, nil, fmt.Errorf("httpapi: decoding process response: %w", err)
	}
	out, err := document.Parse([]byte(pr.Document))
	if err != nil {
		return nil, nil, fmt.Errorf("httpapi: parsing returned document: %w", err)
	}
	return &pr, out, nil
}

// Metrics fetches the service's Prometheus text exposition. The metrics
// endpoint is unauthenticated, so this is a plain GET without a
// signature — it works even without Keys.
func (c *Client) Metrics() (string, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("httpapi: GET /v1/metrics: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return string(body), nil
}

// Traces fetches the service's span ring, filtered to one trace when
// traceID is non-empty. Like Metrics, the endpoint is unauthenticated,
// so the plain GET works without Keys — dractl trace uses it to pull
// spans from every tier.
func (c *Client) Traces(traceID string) (*TracesResponse, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	path := "/v1/traces"
	if traceID != "" {
		path += "?trace=" + url.QueryEscape(traceID)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpapi: GET /v1/traces: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var tr TracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		return nil, fmt.Errorf("httpapi: decoding traces: %w", err)
	}
	return &tr, nil
}

// TFCRecords fetches the TFC forwarding log (optionally for one process).
func (c *Client) TFCRecords(processID string) ([]tfc.ForwardRecord, error) {
	path := "/v1/records"
	if processID != "" {
		path += "?process=" + url.QueryEscape(processID)
	}
	_, body, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	var recs []tfc.ForwardRecord
	if err := json.Unmarshal(body, &recs); err != nil {
		return nil, fmt.Errorf("httpapi: decoding records: %w", err)
	}
	return recs, nil
}
