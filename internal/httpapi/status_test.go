package httpapi

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dra4wfms/internal/document"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/wfdef"
)

// wrapResolve reproduces the error chain a key-resolution failure travels:
// pki classifies it, dsig wraps it per signer, the verifier per signature,
// the portal per document — all with %w, so errors.Is sees through.
func wrapResolve(err error) error {
	return fmt.Errorf("portal: rejecting document (3 signatures verified before failure): %w",
		fmt.Errorf("signature sig-final-A-0: %w",
			fmt.Errorf("dsig: resolving signer %q: %w", "x@y", err)))
}

// Key-resolution failures must surface as precise client errors, never a
// blanket 409 (and never 500): an unregistered or revoked signer is 401,
// unparseable registered key material is 422, and only genuine document
// problems (tampering, replay) remain conflicts.
func TestVerifyFailureStatusClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"unknown principal", wrapResolve(fmt.Errorf("%w: x@y", pki.ErrUnknownPrincipal)), http.StatusUnauthorized},
		{"malformed key", wrapResolve(fmt.Errorf("%w: bad ed25519 point", pki.ErrMalformedKey)), http.StatusUnprocessableEntity},
		{"tampered cascade", fmt.Errorf("signature sig3: reference #p3: digest mismatch"), http.StatusConflict},
		{"replay", fmt.Errorf("portal: process already stored"), http.StatusConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := verifyFailureStatus(tc.err); got != tc.want {
				t.Fatalf("verifyFailureStatus(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}

func TestHTTPStatusErrorClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"unknown principal", wrapResolve(fmt.Errorf("%w: x@y", pki.ErrUnknownPrincipal)), http.StatusUnauthorized},
		{"malformed key", wrapResolve(fmt.Errorf("%w: truncated modulus", pki.ErrMalformedKey)), http.StatusUnprocessableEntity},
		{"unknown process", fmt.Errorf("portal: unknown process: p-404"), http.StatusNotFound},
		{"unclassified", fmt.Errorf("pool: region server down"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			httpStatusError(rec, tc.err)
			if rec.Code != tc.want {
				t.Fatalf("httpStatusError(%v) wrote %d, want %d", tc.err, rec.Code, tc.want)
			}
		})
	}
}

// End to end: a document whose designer certificate has been revoked is a
// 401 over the wire — the store fails during signature verification with
// pki.ErrUnknownPrincipal, and that classification survives every wrap up
// to the HTTP layer.
func TestRevokedSignerIs401OverHTTP(t *testing.T) {
	w := newWorld(t)
	doc, err := document.New(wfdef.Fig9A(), w.env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	w.env.Registry.Revoke("designer@acme")

	cli := w.clientFor(t, wfdef.Fig9Participants["A"])
	_, err = cli.StoreInitial(doc)
	if err == nil {
		t.Fatal("initial document with revoked designer stored")
	}
	if !strings.Contains(err.Error(), "401") {
		t.Fatalf("revoked signer surfaced as %v, want HTTP 401", err)
	}
}
