package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/telemetry"
	"dra4wfms/internal/testenv"
	"dra4wfms/internal/wfdef"
)

// TestBodyTooLarge413 exercises the request-size limit: an oversized body
// must draw a deliberate 413 with a JSON error (not a connection reset)
// and bump the rejection counter. The limit is shrunk so the test does
// not allocate 64 MiB.
func TestBodyTooLarge413(t *testing.T) {
	old := maxBody
	maxBody = 1024
	t.Cleanup(func() { maxBody = old })

	w := newWorld(t)
	before := mRejected.Value()

	body := strings.Repeat("x", 2048)
	resp, err := http.Post(w.portalSrv.URL+"/v1/documents", ContentXML, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentJSON {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentJSON)
	}
	var msg map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatalf("413 body is not JSON: %v", err)
	}
	if !strings.Contains(msg["error"], "1024") {
		t.Fatalf("413 error = %q, want the byte limit mentioned", msg["error"])
	}
	if got := mRejected.Value() - before; got != 1 {
		t.Fatalf("http_requests_rejected_total delta = %d, want 1", got)
	}

	// A body exactly at the limit must pass the size check (it fails
	// later, as an unsigned request).
	resp2, err := http.Post(w.portalSrv.URL+"/v1/documents", ContentXML, strings.NewReader(strings.Repeat("x", 1024)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusRequestEntityTooLarge {
		t.Fatal("body exactly at the limit was rejected as too large")
	}
}

// sampleLine matches one exposition sample: name{labels} value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)

// TestMetricsEndpoint drives one basic-model process over HTTP, then
// scrapes GET /v1/metrics (unauthenticated, like a Prometheus scraper)
// and checks that every line parses and that the portal, AEA, and pool
// instrumentation all surfaced.
func TestMetricsEndpoint(t *testing.T) {
	w := newWorld(t)
	def := wfdef.Fig9A()
	doc, err := document.New(def, w.env.KeyOf("designer@acme"), testenv.ProcessID(), now)
	if err != nil {
		t.Fatal(err)
	}
	pid := doc.ProcessID()
	if _, err := w.clientFor(t, "designer@acme").StoreInitial(doc); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		act    string
		inputs aea.Inputs
	}{
		{"A", aea.Inputs{"request": "r"}},
		{"B1", aea.Inputs{"techReview": "ok"}},
		{"B2", aea.Inputs{"budgetReview": "ok"}},
		{"C", aea.Inputs{"summary": "s"}},
		{"D", aea.Inputs{"accept": "true"}},
	}
	for _, s := range steps {
		cli := w.clientFor(t, wfdef.Fig9Participants[s.act])
		if _, err := cli.Worklist(); err != nil {
			t.Fatal(err)
		}
		cur, err := cli.Retrieve(pid)
		if err != nil {
			t.Fatal(err)
		}
		out, err := w.agents[s.act].Execute(cur, s.act, s.inputs, now)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Store(out.Doc); err != nil {
			t.Fatal(err)
		}
	}

	// Scrape without a signature, as Prometheus would.
	resp, err := http.Get(w.portalSrv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != MetricsContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, MetricsContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	// Every line must be a # TYPE comment or a well-formed sample.
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("line %d does not parse as an exposition sample: %q", i+1, line)
		}
	}

	// The instrumented layers all surfaced: HTTP routes, AEA crypto
	// counters (the in-process agents share the default registry), and
	// pool scan latencies (worklists scan the table).
	for _, want := range []string{
		`http_request_seconds_bucket{route="POST /v1/documents"`,
		`http_requests_total{route="GET /v1/worklist",code="2xx"}`,
		"# TYPE aea_verify_signatures_total counter",
		"# TYPE aea_sign_ops_total counter",
		"# TYPE pool_scan_seconds histogram",
		"pool_scan_seconds_bucket{",
		"# TYPE portal_store_seconds histogram",
		"dsig_verify_ops_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	// The same exposition is reachable through the typed client.
	viaClient, err := w.clientFor(t, "designer@acme").Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(viaClient, "# TYPE http_request_seconds histogram") {
		t.Error("Client.Metrics() did not return the exposition text")
	}

	// The TFC handler serves metrics too.
	tfcResp, err := http.Get(w.tfcSrv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	tfcResp.Body.Close()
	if tfcResp.StatusCode != http.StatusOK {
		t.Fatalf("TFC GET /v1/metrics = %d", tfcResp.StatusCode)
	}
}

// TestPprofGated checks /debug/pprof is absent by default and served when
// EnablePprof is set.
func TestPprofGated(t *testing.T) {
	w := newWorld(t)
	resp, err := http.Get(w.portalSrv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without opt-in = %d, want 404", resp.StatusCode)
	}

	srv := &PortalServer{EnablePprof: true}
	mux := http.NewServeMux()
	registerObservability(mux, srv.EnablePprof, nil)
	req, _ := http.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil)
	h, pattern := mux.Handler(req)
	if h == nil || pattern == "" {
		t.Fatal("pprof handlers not registered with EnablePprof")
	}
}

// Shared-registry sanity: the package-level telemetry handles used by the
// middleware belong to the process default registry.
func TestMiddlewareUsesDefaultRegistry(t *testing.T) {
	if tel != telemetry.Default() {
		t.Fatal("httpapi middleware is not on the default registry")
	}
}
