package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"dra4wfms/internal/relay"
)

// Liveness and readiness probes, the lifecycle contract the daemons expose
// to orchestrators:
//
//	GET /v1/healthz — liveness: 200 as long as the process serves HTTP at
//	all. Restart the process when this fails.
//	GET /v1/readyz  — readiness: 200 only once startup recovery has
//	finished AND no registered check (e.g. relay saturation) fails AND the
//	server is not draining for shutdown. Route traffic elsewhere when this
//	fails; do not restart.
//
// readyz distinguishes a third state between ready and unready:
// *degraded* (200 with {"status":"degraded"} and a reason). Degraded
// checks report conditions the server can serve through — a backup
// replica lagging behind a healthy primary, say — where flapping to 503
// would make load balancers evict a perfectly serviceable instance.
// Orchestrators keep routing on 200; operators see the reason in the
// body and the "degraded" status.
//
// Both endpoints are unauthenticated by design: probes cannot sign
// requests, and the responses carry only liveness state.

// Probes tracks a daemon's readiness state. The zero value is NOT ready;
// daemons call SetReady(true) once startup recovery completes and
// StartDraining when shutdown begins.
type Probes struct {
	ready    atomic.Bool
	draining atomic.Bool

	mu       sync.RWMutex
	checks   map[string]func() error
	degraded map[string]func() error
}

// NewProbes returns a Probes in the not-ready state.
func NewProbes() *Probes {
	return &Probes{}
}

// SetReady flips readiness. Daemons call SetReady(true) exactly once,
// after recovery has replayed the WAL and the relay outbox is loaded.
func (p *Probes) SetReady(ready bool) {
	p.ready.Store(ready)
}

// StartDraining marks the server as shutting down: readyz fails
// immediately so load balancers stop sending new work, while healthz keeps
// succeeding for the in-flight drain window.
func (p *Probes) StartDraining() {
	p.draining.Store(true)
}

// AddCheck registers a named readiness check, consulted on every readyz
// request. A check returning a non-nil error makes the server unready and
// the error text is surfaced in the response body.
func (p *Probes) AddCheck(name string, check func() error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.checks == nil {
		p.checks = make(map[string]func() error)
	}
	p.checks[name] = check
}

// AddDegradedCheck registers a named soft check: a non-nil error marks
// the server *degraded* — readyz stays 200 (the server can serve) but
// the body reports {"status":"degraded"} with the check's error, so the
// condition is visible without evicting the instance from rotation.
func (p *Probes) AddDegradedCheck(name string, check func() error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.degraded == nil {
		p.degraded = make(map[string]func() error)
	}
	p.degraded[name] = check
}

// Ready reports the current readiness verdict and, when unready, why.
// Degraded conditions still count as ready here; use Status for the
// three-state verdict.
func (p *Probes) Ready() (bool, string) {
	state, reason := p.Status()
	if state == StateUnready {
		return false, reason
	}
	return true, ""
}

// Readiness states, in the order readyz reports them.
const (
	StateReady    = "ready"
	StateDegraded = "degraded"
	StateUnready  = "unready"
)

// Status reports the three-state readiness verdict: unready (hard check
// failed, not recovered, or draining), degraded (all hard checks pass
// but a soft check fails), or ready. The reason names the first failing
// check in sorted-name order.
func (p *Probes) Status() (state, reason string) {
	if p.draining.Load() {
		return StateUnready, "draining: shutdown in progress"
	}
	if !p.ready.Load() {
		return StateUnready, "starting: recovery not complete"
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if name, err := firstFailing(p.checks); err != nil {
		return StateUnready, fmt.Sprintf("check %s: %v", name, err)
	}
	if name, err := firstFailing(p.degraded); err != nil {
		return StateDegraded, fmt.Sprintf("check %s: %v", name, err)
	}
	return StateReady, ""
}

// firstFailing consults checks in sorted-name order (deterministic
// reasons) and returns the first failure.
func firstFailing(checks map[string]func() error) (string, error) {
	names := make([]string, 0, len(checks))
	for name := range checks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := checks[name](); err != nil {
			return name, err
		}
	}
	return "", nil
}

// handleHealthz is the liveness endpoint: reachable means alive.
func handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", ContentJSON)
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// readyzHandler builds the readiness endpoint for p. A nil Probes means
// the daemon opted out of lifecycle gating; the endpoint then always
// succeeds, which keeps httptest-based servers and the bench harness
// working unchanged.
func readyzHandler(p *Probes) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentJSON)
		if p != nil {
			state, reason := p.Status()
			switch state {
			case StateUnready:
				w.WriteHeader(http.StatusServiceUnavailable)
				_ = json.NewEncoder(w).Encode(map[string]string{"status": StateUnready, "reason": reason})
				return
			case StateDegraded:
				// Deliberately 200: the server serves; the condition is
				// surfaced, not used to evict the instance.
				_ = json.NewEncoder(w).Encode(map[string]string{"status": StateDegraded, "reason": reason})
				return
			}
		}
		_ = json.NewEncoder(w).Encode(map[string]string{"status": StateReady})
	}
}

// RelaySaturationCheck returns a readiness check that fails when the
// webhook relay's pending backlog exceeds maxPending — the portal keeps
// accepting reads but signals that notification delivery is falling
// behind. rly is a getter because the dispatcher creates its relay
// lazily on first use; both a nil getter and a nil relay count as an
// empty (healthy) backlog.
func RelaySaturationCheck(rly func() *relay.Relay, maxPending int) func() error {
	return func() error {
		if rly == nil {
			return nil
		}
		r := rly()
		if r == nil {
			return nil
		}
		if pending := r.Stats().Pending; pending > maxPending {
			return fmt.Errorf("relay backlog %d exceeds %d", pending, maxPending)
		}
		return nil
	}
}
