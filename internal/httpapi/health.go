package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"dra4wfms/internal/relay"
)

// Liveness and readiness probes, the lifecycle contract the daemons expose
// to orchestrators:
//
//	GET /v1/healthz — liveness: 200 as long as the process serves HTTP at
//	all. Restart the process when this fails.
//	GET /v1/readyz  — readiness: 200 only once startup recovery has
//	finished AND no registered check (e.g. relay saturation) fails AND the
//	server is not draining for shutdown. Route traffic elsewhere when this
//	fails; do not restart.
//
// Both endpoints are unauthenticated by design: probes cannot sign
// requests, and the responses carry only liveness state.

// Probes tracks a daemon's readiness state. The zero value is NOT ready;
// daemons call SetReady(true) once startup recovery completes and
// StartDraining when shutdown begins.
type Probes struct {
	ready    atomic.Bool
	draining atomic.Bool

	mu     sync.RWMutex
	checks map[string]func() error
}

// NewProbes returns a Probes in the not-ready state.
func NewProbes() *Probes {
	return &Probes{}
}

// SetReady flips readiness. Daemons call SetReady(true) exactly once,
// after recovery has replayed the WAL and the relay outbox is loaded.
func (p *Probes) SetReady(ready bool) {
	p.ready.Store(ready)
}

// StartDraining marks the server as shutting down: readyz fails
// immediately so load balancers stop sending new work, while healthz keeps
// succeeding for the in-flight drain window.
func (p *Probes) StartDraining() {
	p.draining.Store(true)
}

// AddCheck registers a named readiness check, consulted on every readyz
// request. A check returning a non-nil error makes the server unready and
// the error text is surfaced in the response body.
func (p *Probes) AddCheck(name string, check func() error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.checks == nil {
		p.checks = make(map[string]func() error)
	}
	p.checks[name] = check
}

// Ready reports the current readiness verdict and, when unready, why.
func (p *Probes) Ready() (bool, string) {
	if p.draining.Load() {
		return false, "draining: shutdown in progress"
	}
	if !p.ready.Load() {
		return false, "starting: recovery not complete"
	}
	p.mu.RLock()
	names := make([]string, 0, len(p.checks))
	for name := range p.checks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := p.checks[name](); err != nil {
			p.mu.RUnlock()
			return false, fmt.Sprintf("check %s: %v", name, err)
		}
	}
	p.mu.RUnlock()
	return true, ""
}

// handleHealthz is the liveness endpoint: reachable means alive.
func handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", ContentJSON)
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// readyzHandler builds the readiness endpoint for p. A nil Probes means
// the daemon opted out of lifecycle gating; the endpoint then always
// succeeds, which keeps httptest-based servers and the bench harness
// working unchanged.
func readyzHandler(p *Probes) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentJSON)
		if p != nil {
			if ok, reason := p.Ready(); !ok {
				w.WriteHeader(http.StatusServiceUnavailable)
				_ = json.NewEncoder(w).Encode(map[string]string{"status": "unready", "reason": reason})
				return
			}
		}
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ready"})
	}
}

// RelaySaturationCheck returns a readiness check that fails when the
// webhook relay's pending backlog exceeds maxPending — the portal keeps
// accepting reads but signals that notification delivery is falling
// behind. rly is a getter because the dispatcher creates its relay
// lazily on first use; both a nil getter and a nil relay count as an
// empty (healthy) backlog.
func RelaySaturationCheck(rly func() *relay.Relay, maxPending int) func() error {
	return func() error {
		if rly == nil {
			return nil
		}
		r := rly()
		if r == nil {
			return nil
		}
		if pending := r.Stats().Pending; pending > maxPending {
			return fmt.Errorf("relay backlog %d exceeds %d", pending, maxPending)
		}
		return nil
	}
}
