// Loan approval: the paper's Figure 4 scenario — flow-information
// concealment forces the ADVANCED operational model with a TFC server.
//
// Peter enters the loan amount X, which only the reviewer Amy (and the
// TFC) may read. Tony attaches the customer dossier Y, confidential to the
// eventual handler. After Amy's review, a conditional branch on X routes
// to John (large loans) or Mary (small loans) — but Tony and Amy cannot
// evaluate that branch or know the next reader, so their AEAs hand the
// encrypted results to the TFC server, which decrypts, applies the
// per-variable policy encryption, stamps the finish time, signs (keeping
// the cascade intact) and forwards.
//
// The example then demonstrates the failure the paper describes: under the
// basic model Tony simply cannot proceed.
//
// Run: go run ./examples/loanapproval
package main

import (
	"errors"
	"fmt"
	"log"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/core"
	"dra4wfms/internal/wfdef"
	"dra4wfms/internal/xmlenc"
)

func main() {
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	p := wfdef.Fig4Participants
	designer, err := sys.Enroll("designer@p0")
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range []string{p.Peter, p.Tony, p.Amy, p.John, p.Mary} {
		if _, err := sys.Enroll(id); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := sys.EnrollTFC("tfc@cloud"); err != nil {
		log.Fatal(err)
	}

	def := wfdef.Fig4()
	fmt.Println("=== concealed-flow workflow (paper, Figure 4) ===")
	fmt.Print(def)
	fmt.Println("\npolicy: X readable by Amy+TFC only; Y by John/Mary/TFC; flow concealed")

	// --- the basic model fails, as the paper argues ----------------------
	doc, _, err := sys.StartProcess(def, designer)
	if err != nil {
		log.Fatal(err)
	}
	peterAEA, _ := sys.NewAEA(p.Peter)
	session, err := peterAEA.Open(doc, "A1")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := session.Complete(aea.Inputs{"X": "1500"}, sys.Now()); errors.Is(err, aea.ErrAdvancedRequired) {
		fmt.Printf("\nbasic model refused (as expected): %v\n", err)
	} else {
		log.Fatalf("BUG: basic completion did not fail correctly: %v", err)
	}

	// --- the advanced model succeeds --------------------------------------
	run := func(amount string) {
		doc, _, err := sys.StartProcess(def, designer)
		if err != nil {
			log.Fatal(err)
		}
		runner := sys.NewRunner()
		runner.RespondValues("A1", aea.Inputs{"X": amount}).
			RespondValues("A2", aea.Inputs{"Y": "dossier: salary slips, contracts"}).
			RespondValues("A3", aea.Inputs{"reviewed": "true"}).
			RespondValues("A4", aea.Inputs{"highResult": "senior banker approved"}).
			RespondValues("A5", aea.Inputs{"lowResult": "teller approved"})
		final, err := runner.Run(doc.ProcessID())
		if err != nil {
			log.Fatal(err)
		}
		handler := "A4 (John, large loans)"
		if _, ok := final.FindCER("final", "A5", 0); ok {
			handler = "A5 (Mary, small loans)"
		}
		fmt.Printf("\nX=%s: routed by the TFC to %s\n", amount, handler)

		// Who can read what in the final document?
		for _, id := range []string{p.Tony, p.Amy, p.John, p.Mary} {
			kp, _ := sys.Keys(id)
			view := final.Clone()
			if _, err := xmlenc.DecryptVisible(view.Root, kp); err != nil {
				log.Fatal(err)
			}
			vals := view.Values()
			_, seesX := vals["X"]
			_, seesY := vals["Y"]
			fmt.Printf("  %-10s sees X:%-5v Y:%-5v\n", id, seesX, seesY)
		}

		// Every final CER carries the TFC's timestamp (the notary role).
		srv, _ := sys.TFC("tfc@cloud")
		fmt.Printf("  TFC forwarded %d documents for this instance\n",
			len(srv.RecordsFor(final.ProcessID())))
	}
	run("1500") // Func(X)=True  -> John
	run("800")  // Func(X)=False -> Mary
}
