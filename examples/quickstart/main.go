// Quickstart: a three-activity leave-request workflow executed under the
// basic operational model of DRA4WfMS — no workflow engine anywhere, the
// document is routed directly from participant to participant.
//
// It demonstrates the essentials in ~five minutes of reading:
//
//  1. the designer builds and signs a workflow definition;
//  2. each participant's AEA verifies the received document, appends an
//     element-wise encrypted result and a cascade signature, and forwards;
//  3. any alteration of any past result is detected by signature
//     verification;
//  4. Algorithm 1 derives a CER's nonrepudiation scope.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/document"
	"dra4wfms/internal/pki"
	"dra4wfms/internal/wfdef"
)

func main() {
	// --- trust fabric: one CA, four principals --------------------------
	ca, err := pki.NewCA("ca@demo", 2048)
	if err != nil {
		log.Fatal(err)
	}
	registry := pki.NewRegistry(ca)
	now := time.Now()

	principals := []string{"designer@hr", "emma@eng", "manager@eng", "hr@corp"}
	keys := map[string]*pki.KeyPair{}
	for _, id := range principals {
		kp, err := pki.GenerateKeyPair(id, 2048)
		if err != nil {
			log.Fatal(err)
		}
		cert, err := ca.Issue(pki.Identity{ID: id, DisplayName: id}, kp.Public(), now, 24*time.Hour)
		if err != nil {
			log.Fatal(err)
		}
		if err := registry.Register(cert, now); err != nil {
			log.Fatal(err)
		}
		keys[id] = kp
	}

	// --- the workflow definition ----------------------------------------
	// The shared fixture keeps this example, `dractl lint leave-request`,
	// and the information-flow lint tests on one definition. The reason
	// field is personal: a ReadRule conceals it from everyone but the
	// manager.
	def := wfdef.LeaveRequest()
	fmt.Println("=== workflow ===")
	fmt.Print(def)

	// --- the secured initial document (CER(A0)) --------------------------
	doc, err := document.New(def, keys["designer@hr"], "leave-2026-0042", now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninitial document: %d bytes, signed by %s\n", doc.Size(), def.Designer)

	// --- route it through the three participants -------------------------
	agents := map[string]*aea.AEA{}
	for _, id := range principals[1:] {
		agents[id] = aea.New(keys[id], registry)
	}

	out1, err := agents["emma@eng"].Execute(doc, "request",
		aea.Inputs{"days": "3", "reason": "family matter"}, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 'request':  %d bytes, next: %v\n", out1.Doc.Size(), out1.Next)

	// The manager's AEA decrypts the fields the manager may read.
	session, err := agents["manager@eng"].Open(out1.Routed["approve"], "approve")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manager sees: %v (signatures verified: %d)\n", session.Requests(), session.VerifiedSignatures)
	out2, err := session.Complete(aea.Inputs{"approved": "true"}, now)
	if err != nil {
		log.Fatal(err)
	}

	// HR cannot see the reason — the element stays encrypted for them.
	session3, err := agents["hr@corp"].Open(out2.Routed["record"], "record")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hr sees:      %v (no 'reason': it is encrypted for the manager only)\n", session3.Requests())
	out3, err := session3.Complete(aea.Inputs{"recorded": "true"}, now)
	if err != nil {
		log.Fatal(err)
	}
	final := out3.Doc
	fmt.Printf("process completed: %v, final document %d bytes\n", out3.Completed, final.Size())

	// --- integrity: any tamper is detected -------------------------------
	n, err := final.VerifyAll(registry)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== verification ===\nall %d signatures valid\n", n)

	forged := final.Clone()
	forged.Root.FindByID("res-request-0").SetText("30 days, because I said so")
	if _, err := forged.VerifyAll(registry); err != nil {
		fmt.Printf("tampering with emma's stored result is detected: %v\n", err)
	} else {
		log.Fatal("BUG: tamper went undetected")
	}

	// --- nonrepudiation scope (Algorithm 1) ------------------------------
	scope, err := final.NonrepudiationScope("cer-record-0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== nonrepudiation ===\nscope of HR's CER: %v\n", scope)
	fmt.Println("HR cannot deny having received a document containing every CER above;")
	fmt.Println("recursively, neither emma nor the manager can repudiate their steps.")

	fmt.Printf("\n%s\n", final.Summary())
}
