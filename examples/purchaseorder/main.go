// Purchase order: the paper's Figure 9A workflow (sequence, AND-split,
// AND-join, conditional loop) run as a cross-enterprise process in the
// DRA4WfMS cloud deployment of Figure 7 — portal servers in front of an
// HBase-like document pool, with worklists, notifications, and workflow
// monitoring.
//
// The first pass through the process is rejected ("attachment is
// insufficient"), looping back to the requester; the second pass accepts.
//
// Run: go run ./examples/purchaseorder
package main

import (
	"fmt"
	"log"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/core"
	"dra4wfms/internal/document"
	"dra4wfms/internal/wfdef"
)

func main() {
	sys, err := core.NewSystem(core.Config{Portals: 2})
	if err != nil {
		log.Fatal(err)
	}
	// Enroll the designer and the five participants from two enterprises
	// (acme and bolt).
	designer, err := sys.Enroll("designer@acme")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range wfdef.Fig9Participants {
		if _, err := sys.Enroll(p); err != nil {
			log.Fatal(err)
		}
	}

	def := wfdef.Fig9A()
	fmt.Println("=== cross-enterprise workflow (paper, Figure 9A) ===")
	fmt.Print(def)

	doc, notes, err := sys.StartProcess(def, designer)
	if err != nil {
		log.Fatal(err)
	}
	pid := doc.ProcessID()
	fmt.Printf("\nprocess %s started; notifications: %v\n", pid, notes)

	// Worklist check: alice sees the first activity on her TO-DO list.
	items, err := sys.Portal(0).Worklist(wfdef.Fig9Participants["A"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice's worklist: %v\n", items)

	// Scripted participants: first decision rejects, second accepts.
	pass := 0
	runner := sys.NewRunner()
	runner.
		Respond("A", func(s *aea.Session) (aea.Inputs, error) {
			pass++
			attachment := ""
			if pass > 1 {
				// Second pass: attach the supplier quote as a real binary
				// attachment travelling inside the encrypted field.
				attachment = document.EncodeAttachment("quote.pdf", "application/pdf",
					[]byte("%PDF-1.4 supplier quote for 10 build servers"))
			}
			fmt.Printf("  [A ] alice prepares request (pass %d)\n", pass)
			return aea.Inputs{"request": "10 build servers", "attachment": attachment}, nil
		}).
		Respond("B1", func(s *aea.Session) (aea.Inputs, error) {
			fmt.Printf("  [B1] bob reviews tech: sees %v\n", s.Requests())
			return aea.Inputs{"techReview": "adequate"}, nil
		}).
		Respond("B2", func(s *aea.Session) (aea.Inputs, error) {
			fmt.Printf("  [B2] betty reviews budget (enterprise bolt)\n")
			return aea.Inputs{"budgetReview": "within Q3 budget"}, nil
		}).
		Respond("C", func(s *aea.Session) (aea.Inputs, error) {
			fmt.Printf("  [C ] carol consolidates both reviews\n")
			return aea.Inputs{"summary": "both reviews positive"}, nil
		}).
		Respond("D", func(s *aea.Session) (aea.Inputs, error) {
			attachment := s.Requests()["attachment"]
			if name, mediaType, data, ok := document.DecodeAttachment(attachment); ok {
				fmt.Printf("  [D ] dave accepts (attachment %s, %s, %d bytes)\n", name, mediaType, len(data))
				return aea.Inputs{"accept": "true"}, nil
			}
			fmt.Printf("  [D ] dave rejects: attachment is insufficient -> loop back to A\n")
			return aea.Inputs{"accept": "false"}, nil
		})

	fmt.Println("\n=== execution ===")
	final, err := runner.Run(pid)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== result ===")
	fmt.Println(final.Summary())

	n, err := final.VerifyAll(sys.Registry)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall %d signatures verify; document is %d bytes after %d activity executions\n",
		n, final.Size(), len(final.FinalCERs()))

	// Monitoring over the pool.
	st, err := sys.Monitor.InstanceStatus(pid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== monitoring ===\nstate=%s steps=%d\n", st.State, len(st.Steps))
	for _, step := range st.Steps {
		fmt.Printf("  %s#%d by %-12s -> %v\n", step.Activity, step.Iteration, step.Participant, step.Next)
	}
	stats, err := sys.Monitor.Statistics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool statistics: %v instances, %d activity executions recorded, mean doc %d bytes\n",
		stats.InstancesByState, stats.TotalFinalCERs, stats.MeanDocumentBytes)
}
