// Cloud cluster: many concurrent process instances against the DRA4WfMS
// cloud system — the Figure 7 deployment at scale — plus the comparison
// the paper's introduction motivates: the engine-based baseline's
// superuser can silently rewrite history, while any alteration of a
// DRA4WfMS document is cryptographically detected.
//
// The example:
//
//  1. runs N instances of the Figure 9A workflow through two portals
//     sharing an HBase-like pool (small region-split threshold so splits
//     actually happen);
//  2. prints pool statistics computed by map-reduce over the pool;
//  3. replays one instance on the engine-based baseline and demonstrates
//     the undetectable superuser tamper vs. DRA4WfMS detection.
//
// Run: go run ./examples/cloudcluster
package main

import (
	"fmt"
	"log"
	"time"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/core"
	"dra4wfms/internal/document"
	"dra4wfms/internal/engine"
	"dra4wfms/internal/wfdef"
)

const instances = 8

func main() {
	sys, err := core.NewSystem(core.Config{
		Portals:            2,
		PoolServers:        []string{"rs-1", "rs-2", "rs-3", "rs-4"},
		PoolSplitThreshold: 64 << 10, // 64 KiB: force region splits
	})
	if err != nil {
		log.Fatal(err)
	}
	designer, err := sys.Enroll("designer@acme")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range wfdef.Fig9Participants {
		if _, err := sys.Enroll(p); err != nil {
			log.Fatal(err)
		}
	}

	def := wfdef.Fig9A()
	fmt.Printf("=== running %d instances of %s through the cloud system ===\n", instances, def.Name)
	start := time.Now()
	var pids []string
	for i := 0; i < instances; i++ {
		doc, _, err := sys.StartProcess(def, designer)
		if err != nil {
			log.Fatal(err)
		}
		runner := sys.NewRunner()
		accept := "true"
		if i%3 == 0 {
			accept = "false" // every third instance loops once
		}
		first := true
		runner.RespondValues("A", aea.Inputs{"request": fmt.Sprintf("order %d", i)}).
			RespondValues("B1", aea.Inputs{"techReview": "ok"}).
			RespondValues("B2", aea.Inputs{"budgetReview": "ok"}).
			RespondValues("C", aea.Inputs{"summary": "fine"}).
			Respond("D", func(s *aea.Session) (aea.Inputs, error) {
				if first && accept == "false" {
					first = false
					return aea.Inputs{"accept": "false"}, nil
				}
				return aea.Inputs{"accept": "true"}, nil
			})
		if _, err := runner.Run(doc.ProcessID()); err != nil {
			log.Fatal(err)
		}
		pids = append(pids, doc.ProcessID())
	}
	fmt.Printf("completed %d instances in %v\n", instances, time.Since(start).Round(time.Millisecond))

	// --- pool state --------------------------------------------------------
	fmt.Println("\n=== document pool ===")
	fmt.Printf("region servers: %v\n", sys.Cluster.Servers())
	fmt.Printf("region splits on the documents table: %d\n", sys.Cluster.Splits("dra4wfms_documents"))
	fmt.Printf("region distribution: %v\n", sys.Cluster.RegionDistribution())

	stats, err := sys.Monitor.Statistics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("map-reduce statistics: byState=%v byDefinition=%v totalExecutions=%d meanDocBytes=%d\n",
		stats.InstancesByState, stats.InstancesByDefinition, stats.TotalFinalCERs, stats.MeanDocumentBytes)

	// --- the baseline comparison -------------------------------------------
	fmt.Println("\n=== engine-based baseline: the superuser problem ===")
	eng := engine.New("engine-1", nil)
	if err := eng.Deploy(def); err != nil {
		log.Fatal(err)
	}
	iid, _ := eng.CreateInstance(def.Name)
	steps := []struct {
		act string
		in  map[string]string
	}{
		{"A", map[string]string{"request": "order 0"}},
		{"B1", map[string]string{"techReview": "ok"}},
		{"B2", map[string]string{"budgetReview": "ok"}},
		{"C", map[string]string{"summary": "fine"}},
		{"D", map[string]string{"accept": "true"}},
	}
	for _, s := range steps {
		if _, err := eng.Execute(iid, s.act, wfdef.Fig9Participants[s.act], s.in); err != nil {
			log.Fatal(err)
		}
	}
	// The DB admin rewrites alice's request and erases a review step.
	su := eng.Superuser()
	su.TamperResult(iid, "A", 0, "request", "order 500 gold-plated servers")
	su.EraseStep(iid, "B1", 0)
	if err := eng.VerifyInstance(iid); err == nil {
		fmt.Println("engine store rewritten by superuser; engine integrity check: PASSES (nothing to detect with)")
	}
	in, _ := eng.Instance(iid)
	fmt.Printf("engine now claims alice requested: %q, history has %d steps (was 5)\n",
		in.History[0].Values["request"], len(in.History))

	fmt.Println("\n=== DRA4WfMS: the same attack is detected ===")
	raw, _ := sys.Table.Get(pids[0], "doc", "content")
	doc, err := document.Parse(raw)
	if err != nil {
		log.Fatal(err)
	}
	doc.Root.FindByID("res-A-0").SetText("order 500 gold-plated servers")
	if _, err := doc.VerifyAll(sys.Registry); err != nil {
		fmt.Printf("alteration detected by signature verification: %v\n", err)
	} else {
		log.Fatal("BUG: tamper went undetected")
	}
}
