// Expense flow: a cross-enterprise expense-approval workflow showing the
// operational features around the core protocol —
//
//   - the designer publishes a SIGNED WORKFLOW TEMPLATE to the portal
//     catalog; any participant can fetch and verify it before trusting
//     the process shape;
//   - the approval activity is ROLE-BASED: any certified "approver" may
//     claim it from the role worklist (two managers hold the role);
//   - the receipt travels as a BINARY ATTACHMENT inside an encrypted
//     field;
//   - when the finance department later disputes the payout, an OFFLINE
//     AUDIT over the final document settles it: the approver cannot deny
//     the approval, and the amount cannot have been altered.
//
// Run: go run ./examples/expenseflow
package main

import (
	"fmt"
	"log"

	"dra4wfms/internal/aea"
	"dra4wfms/internal/audit"
	"dra4wfms/internal/core"
	"dra4wfms/internal/document"
	"dra4wfms/internal/wfdef"
)

func main() {
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	designer, err := sys.Enroll("designer@corp")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Enroll("emma@eng"); err != nil {
		log.Fatal(err)
	}
	// Two approvers hold the role; finance just reads.
	for _, mgr := range []string{"mgr-north@corp", "mgr-south@corp"} {
		if _, err := sys.Enroll(mgr, "approver"); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := sys.Enroll("finance@corp"); err != nil {
		log.Fatal(err)
	}

	// The shared fixture keeps this example and `dractl lint
	// expense-approval` on one definition.
	def := wfdef.ExpenseApproval()

	// --- 1. the designer publishes the signed template --------------------
	tpl, err := document.SignTemplate(def, designer)
	if err != nil {
		log.Fatal(err)
	}
	name, err := sys.Portal(0).StoreTemplate(tpl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("template %q published: catalog = %v\n", name, sys.Portal(0).Templates())

	// A participant fetches and verifies it before agreeing to take part.
	fetched, _, err := sys.Portal(1).Template("emma@eng", name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emma verified the template: %s\n", fetched.Summary())

	// --- 2. run an instance ------------------------------------------------
	doc, _, err := sys.StartProcess(def, designer)
	if err != nil {
		log.Fatal(err)
	}
	receipt := document.EncodeAttachment("dinner.jpg", "image/jpeg", []byte{0xFF, 0xD8, 0xFF, 0xE0, 'j', 'p', 'g'})
	runner := sys.NewRunner()
	runner.RespondValues("file", aea.Inputs{"amount": "86.50", "receipt": receipt}).
		Respond("approve", func(s *aea.Session) (aea.Inputs, error) {
			reqs := s.Requests()
			fname, mediaType, data, _ := document.DecodeAttachment(reqs["receipt"])
			fmt.Printf("approver %s sees amount=%s receipt=%s (%s, %d bytes)\n",
				s.Definition().Activity("approve").Role, reqs["amount"], fname, mediaType, len(data))
			return aea.Inputs{"approved": "true"}, nil
		}).
		RespondValues("payout", aea.Inputs{"paid": "true"}).
		ActAs("approver", "mgr-south@corp") // the south manager claims it

	// The role worklist offers the item to both managers before claiming.
	final, err := runner.Run(doc.ProcessID())
	if err != nil {
		log.Fatal(err)
	}
	cer, _ := final.FindCER("final", "approve", 0)
	fmt.Printf("approval executed and signed by %s (role-based claim)\n", cer.Signer())

	// --- 3. the dispute ----------------------------------------------------
	fmt.Println("\nfinance disputes the payout: 'nobody approved 86.50!'")
	report, err := audit.Audit(final, sys.Registry)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Render())
	if report.Verified {
		scope, _ := final.NonrepudiationScope("cer-approve-0")
		fmt.Printf("\nthe audit binds %s to the approval; its nonrepudiation scope %v\n", cer.Signer(), scope)
		fmt.Println("includes emma's filed amount — neither party can repudiate.")
	}

	// And if finance had doctored the amount in its copy:
	forged := final.Clone()
	forged.Root.FindByID("res-file-0").SetText("forged amount")
	//lint:ignore cryptoerr the forged document is SUPPOSED to fail; the report carries the verdict
	badReport, _ := audit.Audit(forged, sys.Registry)
	fmt.Printf("\nforged copy audit verdict: verified=%v (finding: %s)\n",
		badReport.Verified, badReport.Findings[0].Message)
}
